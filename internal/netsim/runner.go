package netsim

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"image/color"
	"math/rand"
	"sort"
	"sync"
	"time"

	"appshare/internal/ah"
	"appshare/internal/bfcp"
	"appshare/internal/broker"
	"appshare/internal/display"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/relay"
	"appshare/internal/remoting"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
	"appshare/internal/stats"
	"appshare/internal/trace"
	"appshare/internal/transport"
	"appshare/internal/workload"
)

// pliHolddown is the virtual-time minimum between PLIs from one viewer,
// mirroring the real repair loops' restraint so the host's refresh rate
// limiter is exercised, not bypassed.
const pliHolddown = 300 * time.Millisecond

// settleWallLimit bounds the REAL time one TCP settle may poll; a
// scenario tripping it has a harness bug (the terminal states below are
// stable), and the counters oracle reports it rather than hanging CI.
const settleWallLimit = 10 * time.Second

// subStatser is the stats surface of a transport.Bus subscriber.
type subStatser interface {
	Stats() (sent, dropped uint64)
}

// viewerState is the runner's per-viewer bookkeeping.
type viewerState struct {
	idx  int
	name string
	spec ViewerSpec
	prof Profile
	kind ViewerKind
	p    *participant.Participant

	remote *ah.Remote
	// rv is the relay-tier attachment of a ViaRelay viewer (remote is
	// nil for these: the origin never learns they exist), and relayNode
	// is the chain level it hangs off — feedback goes there, not to the
	// origin or the chain root.
	rv        *relay.Viewer
	relayNode *relay.Relay

	// Link state (UDP and the feedback direction of every kind).
	down, up         *transport.Shaper
	heldDown, heldUp []byte
	evSeq            uint64

	conn  *simPacketConn       // UDP
	sconn *streamConn          // TCP
	sub   transport.PacketConn // multicast subscriber

	rxBuf []byte // TCP frame-parse remainder

	// tap records every packet the host sent toward this viewer,
	// pre-shaping (TCP: the parsed frames). Oracle input.
	tap           [][]byte
	tapAfterEvict int

	delivered        uint64 // datagrams/frames handed to the participant
	dropsDown        uint64 // down datagrams the link discarded
	shapedDeliveries uint64 // down deliveries scheduled through the Shaper
	bypassDeliveries uint64 // down deliveries scheduled during quiesce
	mcDrained        uint64 // datagrams drained from the multicast sub

	joined    bool
	left      bool // detached cleanly at spec.LeaveAtTick
	evicted   bool
	evictedAt time.Time
	lastPLIAt time.Time

	settleStuck bool
}

// silencedAt reports whether this viewer has gone silent by the given
// tick.
func (v *viewerState) silencedAt(tick int) bool {
	return v.spec.SilenceAfterTick > 0 && tick >= v.spec.SilenceAfterTick
}

// budgetAtTick resolves the TCP byte budget for one tick: the last
// schedule phase whose FromTick has been reached, or
// StreamBudgetPerTick before (or without) any phase.
func (v *viewerState) budgetAtTick(tick int) int {
	b := v.spec.StreamBudgetPerTick
	for _, ph := range v.spec.StreamBudgetSchedule {
		if tick < ph.FromTick {
			break
		}
		b = ph.Budget
	}
	return b
}

type runner struct {
	sc    Scenario
	clk   *vclock
	epoch time.Time

	// sendMu serializes shipDown: with SendShards > 1 the host's sender
	// goroutines call simPacketConn.Send concurrently from different
	// shards, and the event heap and journaling bookkeeping they feed
	// are shared runner state. The heap's (at, li, seq) total order
	// makes the processing order independent of which shard pushed
	// first, so serializing here costs nothing in determinism.
	sendMu sync.Mutex

	desk  *display.Desktop
	win   *display.Window
	winID uint16
	host  *ah.Host
	coll  *stats.Collector
	wl    workload.Workload

	viewers []*viewerState
	byName  map[string]*viewerState

	// relays is the edge tier (empty without Scenario.Relay): a chain of
	// relays with relays[0] subscribed in-process to the host and each
	// deeper level subscribed to the one above, fanning to the ViaRelay
	// viewers at their RelayLevel.
	relays []*relay.Relay

	// Broker custody (nil/zero without Scenario.Broker).
	brk   *broker.Broker
	hostB *ah.Host
	floor *bfcp.Floor
	// floorReleaseErr records the post-migration moderator release —
	// nil under restored custody, an error when FaultDropFloorState
	// discarded the grant.
	floorReleaseErr error
	released        bool
	failed          bool // the scheduled kill has fired
	hostDead        bool // killed and not yet re-homed
	migrated        bool
	migratedAt      int
	// freshJoinsB counts viewers that joined AFTER the migration: each
	// owes the standby exactly one join refresh, and resumed viewers
	// owe it none — the migration oracle's central claim.
	freshJoinsB uint64
	// oldConns are the dead host's closed transports; the counters
	// oracle audits that nothing was sent into them after the failover.
	oldConns []*simPacketConn

	events eventHeap
	bypass bool

	// Multicast (nil without multicast viewers).
	bus        *transport.Bus
	group      *ah.Remote
	tapSub     transport.PacketConn
	groupTap   [][]byte
	tapDrained uint64

	jbuf *bytes.Buffer
	jw   *trace.Writer

	pendingEvicts []ah.RemoteHealth
	evictedNames  []string

	corrupted bool
	tickNo    int
	ticksRun  int
	tickErrs  []string
}

// deriveSeed mixes the scenario seed with a component label into an
// independent, never-zero sub-seed (zero would make transport.NewShaper
// fall back to the wall clock and break replay).
func deriveSeed(base int64, salt string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(salt))
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}

// entropyFrom adapts a seeded PRNG to the Config.Entropy shape. The
// sources are only ever drawn from the runner goroutine.
func entropyFrom(seed int64) func() uint32 {
	rng := rand.New(rand.NewSource(seed))
	return func() uint32 { return rng.Uint32() }
}

// applyDefaults fills the zero-value scenario knobs.
func applyDefaults(sc Scenario) Scenario {
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Ticks <= 0 {
		sc.Ticks = 30
	}
	if sc.TickInterval <= 0 {
		sc.TickInterval = 40 * time.Millisecond
	}
	if sc.Workload == "" {
		sc.Workload = "typing"
	}
	if sc.QuiesceTicks <= 0 {
		sc.QuiesceTicks = 80
	}
	if sc.DesktopW <= 0 {
		sc.DesktopW = 320
	}
	if sc.DesktopH <= 0 {
		sc.DesktopH = 240
	}
	if sc.RetransLog <= 0 {
		sc.RetransLog = 16384
	}
	return sc
}

// pristineLink reports whether cfg applies no impairment at all.
func pristineLink(cfg transport.LinkConfig) bool {
	return cfg.LossRate == 0 && cfg.ReorderRate == 0 && cfg.Delay == 0 &&
		cfg.Jitter == 0 && cfg.DuplicateRate == 0 && cfg.Burst == nil &&
		cfg.BytesPerSecond == 0
}

// lossOnly reports whether cfg impairs through loss models alone — the
// constraint on multicast subscriber links, whose synchronous delivery
// cannot express delay, reordering or duplication deterministically.
func lossOnly(cfg transport.LinkConfig) bool {
	return cfg.ReorderRate == 0 && cfg.Delay == 0 && cfg.Jitter == 0 &&
		cfg.DuplicateRate == 0 && cfg.BytesPerSecond == 0
}

// validate rejects scenario shapes the simulation cannot run
// deterministically.
func validate(sc Scenario) error {
	if len(sc.Viewers) == 0 {
		return fmt.Errorf("netsim: scenario %q has no viewers", sc.Name)
	}
	if sc.DesktopW < 96 || sc.DesktopH < 64 {
		return fmt.Errorf("netsim: scenario %q: desktop %dx%d is below the 96x64 floor (the shared window is inset 64x48)",
			sc.Name, sc.DesktopW, sc.DesktopH)
	}
	if _, err := ah.ParseEvictionPolicy(sc.EvictionPolicy); err != nil {
		return err
	}
	if sc.Relay == nil && sc.Expect.MinRelayAbsorbed > 0 {
		return fmt.Errorf("netsim: scenario %q: Expect.MinRelayAbsorbed requires a relay tier", sc.Name)
	}
	if sc.Relay != nil && sc.Relay.Levels > 4 {
		return fmt.Errorf("netsim: scenario %q: relay chain depth %d exceeds the 4-level cap", sc.Name, sc.Relay.Levels)
	}
	if sc.Fault == FaultCorruptSnapshot || sc.Fault == FaultDropFloorState {
		if sc.Broker == nil || sc.Broker.FailAtTick <= 0 {
			return fmt.Errorf("netsim: scenario %q: migration faults require Broker with FailAtTick > 0", sc.Name)
		}
	}
	if sc.Broker != nil {
		if sc.Relay != nil {
			return fmt.Errorf("netsim: scenario %q: Broker and Relay tiers cannot be combined", sc.Name)
		}
		if sc.Fault == FaultEvictFeedback {
			return fmt.Errorf("netsim: scenario %q: FaultEvictFeedback is not supported under broker custody", sc.Name)
		}
		if sc.Broker.FailAtTick < 0 {
			return fmt.Errorf("netsim: scenario %q: negative FailAtTick", sc.Name)
		}
		if f := sc.Broker.FailAtTick; f > 0 {
			if d := sc.Broker.detectAfter(); f+d+3 > sc.Ticks {
				return fmt.Errorf("netsim: scenario %q: FailAtTick %d + detection %d needs 3 post-migration ticks before tick %d",
					sc.Name, f, d, sc.Ticks)
			}
		}
	}
	seen := map[string]bool{"_ref": true}
	relayed := 0
	for _, vs := range sc.Viewers {
		if vs.Name == "" {
			return fmt.Errorf("netsim: scenario %q has an unnamed viewer", sc.Name)
		}
		if seen[vs.Name] {
			return fmt.Errorf("netsim: scenario %q: duplicate or reserved viewer name %q", sc.Name, vs.Name)
		}
		seen[vs.Name] = true
		if vs.JoinAtTick < 0 || vs.JoinAtTick >= sc.Ticks {
			return fmt.Errorf("netsim: viewer %q joins at tick %d outside [0,%d)", vs.Name, vs.JoinAtTick, sc.Ticks)
		}
		if vs.LeaveAtTick != 0 {
			if vs.Kind != KindUDP {
				return fmt.Errorf("netsim: viewer %q: LeaveAtTick is only supported for UDP viewers", vs.Name)
			}
			if vs.LeaveAtTick <= vs.JoinAtTick || vs.LeaveAtTick >= sc.Ticks {
				return fmt.Errorf("netsim: viewer %q leaves at tick %d outside (%d,%d)", vs.Name, vs.LeaveAtTick, vs.JoinAtTick, sc.Ticks)
			}
		}
		if vs.ViaRelay {
			relayed++
			if sc.Relay == nil {
				return fmt.Errorf("netsim: viewer %q: ViaRelay requires Scenario.Relay", vs.Name)
			}
			if vs.Kind != KindUDP {
				return fmt.Errorf("netsim: viewer %q: ViaRelay is only supported for UDP viewers", vs.Name)
			}
			if vs.LeaveAtTick != 0 {
				return fmt.Errorf("netsim: viewer %q: LeaveAtTick is not supported behind the relay tier", vs.Name)
			}
			levels := 1
			if sc.Relay.Levels > 0 {
				levels = sc.Relay.Levels
			}
			if vs.RelayLevel < 0 || vs.RelayLevel >= levels {
				return fmt.Errorf("netsim: viewer %q: RelayLevel %d outside the %d-level relay chain", vs.Name, vs.RelayLevel, levels)
			}
		} else if vs.RelayLevel != 0 {
			return fmt.Errorf("netsim: viewer %q: RelayLevel requires ViaRelay", vs.Name)
		}
		if sc.Broker != nil {
			if vs.Kind != KindUDP {
				return fmt.Errorf("netsim: viewer %q: broker scenarios support UDP viewers only", vs.Name)
			}
			if vs.LeaveAtTick != 0 {
				return fmt.Errorf("netsim: viewer %q: LeaveAtTick is not supported under broker custody", vs.Name)
			}
			if f := sc.Broker.FailAtTick; f > 0 {
				// A join inside the dead window would attach to a closed
				// host; the scenario must join before the failure or after
				// the detection horizon.
				if d := sc.Broker.detectAfter(); vs.JoinAtTick >= f && vs.JoinAtTick < f+d {
					return fmt.Errorf("netsim: viewer %q joins at tick %d inside the dead window [%d,%d)",
						vs.Name, vs.JoinAtTick, f, f+d)
				}
			}
		}
		prof := sc.Profile
		if vs.Profile != nil {
			prof = *vs.Profile
		}
		switch vs.Kind {
		case KindTCP:
			if !pristineLink(prof.Down) || !pristineLink(prof.Up) || len(prof.Partitions) > 0 {
				return fmt.Errorf("netsim: TCP viewer %q: link impairments are modeled by StreamBudgetPerTick, not profile %q", vs.Name, prof.Name)
			}
			for i, ph := range vs.StreamBudgetSchedule {
				if ph.Budget <= 0 {
					return fmt.Errorf("netsim: TCP viewer %q: budget phase %d has non-positive budget %d", vs.Name, i, ph.Budget)
				}
				if i > 0 && ph.FromTick <= vs.StreamBudgetSchedule[i-1].FromTick {
					return fmt.Errorf("netsim: TCP viewer %q: budget schedule not sorted by ascending FromTick at phase %d", vs.Name, i)
				}
				if ph.FromTick < 0 || ph.FromTick >= sc.Ticks {
					return fmt.Errorf("netsim: TCP viewer %q: budget phase %d starts at tick %d outside [0,%d)", vs.Name, i, ph.FromTick, sc.Ticks)
				}
			}
		case KindMulticast:
			if !lossOnly(prof.Down) {
				return fmt.Errorf("netsim: multicast viewer %q: subscriber link %q must impair through loss only", vs.Name, prof.Name)
			}
			if len(prof.Partitions) > 0 {
				return fmt.Errorf("netsim: multicast viewer %q: partitions are not supported on subscriber links", vs.Name)
			}
			if vs.JoinAtTick != 0 {
				return fmt.Errorf("netsim: multicast viewer %q must join at tick 0", vs.Name)
			}
		}
	}
	if sc.Relay != nil && relayed == 0 {
		return fmt.Errorf("netsim: scenario %q declares a relay tier but no ViaRelay viewer", sc.Name)
	}
	for _, name := range sc.Expect.Evicted {
		if !seen[name] || name == "_ref" {
			return fmt.Errorf("netsim: Expect.Evicted names unknown viewer %q", name)
		}
		for _, vs := range sc.Viewers {
			if vs.Name == name && vs.ViaRelay {
				return fmt.Errorf("netsim: Expect.Evicted names relay viewer %q (the host cannot evict what it never attached)", name)
			}
		}
	}
	return nil
}

// Run executes one scenario to completion and returns its journal,
// digest and oracle verdicts. It never calls the wall clock for
// simulation decisions: rerunning with the same Scenario value produces
// a byte-identical journal.
func Run(sc Scenario) (*Result, error) {
	sc = applyDefaults(sc)
	if err := validate(sc); err != nil {
		return nil, err
	}

	epoch := time.Unix(1_700_000_000, 0).UTC()
	r := &runner{
		sc:     sc,
		clk:    newVClock(epoch),
		epoch:  epoch,
		byName: make(map[string]*viewerState),
		jbuf:   &bytes.Buffer{},
	}
	jw, err := trace.NewWriter(r.jbuf)
	if err != nil {
		return nil, err
	}
	r.jw = jw

	// Small desktop: the oracles compare every pixel, and the matrix
	// runs under -race in CI. The fixed 64x48 inset keeps the default
	// 320x240 desktop's window at the historical 256x192.
	r.desk = display.NewDesktop(sc.DesktopW, sc.DesktopH)
	r.win = r.desk.CreateWindow(1, region.XYWH(12, 10, sc.DesktopW-64, sc.DesktopH-48))
	r.winID = r.win.ID()
	r.wl, err = workload.ByName(sc.Workload, r.desk, r.win, deriveSeed(sc.Seed, "workload"))
	if err != nil {
		return nil, err
	}

	policy, _ := ah.ParseEvictionPolicy(sc.EvictionPolicy)
	r.coll = stats.NewCollector()
	var tileCfg *ah.TileStoreConfig
	if sc.TileStore {
		tileCfg = &ah.TileStoreConfig{} // negotiated defaults
	}
	r.host, err = ah.New(ah.Config{
		Desktop:         r.desk,
		Retransmissions: true,
		RetransLog:      sc.RetransLog,
		TileStore:       tileCfg,
		SendShards:      sc.SendShards,
		Stats:           r.coll,
		Now:             r.clk.Now,
		Entropy:         entropyFrom(deriveSeed(sc.Seed, "host-entropy")),
		RemoteTimeout:   sc.RemoteTimeout,
		MaxBacklogDwell: sc.MaxBacklogDwell,
		EvictionPolicy:  policy,
		BacklogLimit:    sc.BacklogLimit,
		Ladder:          sc.Ladder,
		OnEvict:         func(snap ah.RemoteHealth) { r.pendingEvicts = append(r.pendingEvicts, snap) },
		// FaultEvictFeedback re-opens the refresh-phase eviction race on
		// purpose; the evictions oracle must catch the resulting traffic.
		DebugDisableEvictGates: sc.Fault == FaultEvictFeedback,
	})
	if err != nil {
		return nil, err
	}
	defer r.host.Close()

	if sc.Relay != nil {
		refreshEvery := sc.Relay.RefreshEvery
		if refreshEvery <= 0 {
			refreshEvery = 8
		}
		levels := sc.Relay.Levels
		if levels <= 0 {
			levels = 1
		}
		// Build the chain root-first: level 0 subscribes to the origin,
		// each deeper level to the one above. Seeding every cache before
		// any viewer joins costs the origin only ONE refresh — the
		// per-level seed requests merge into the origin's single latch,
		// and tick 0's capture republishes down the whole chain.
		var up relay.Upstream = r.host
		for lvl := 0; lvl < levels; lvl++ {
			// Level 0 keeps the historical entropy lane so single-level
			// relay journals stay byte-identical; deeper levels get their
			// own.
			salt := "relay-entropy"
			if lvl > 0 {
				salt = fmt.Sprintf("relay-entropy/%d", lvl)
			}
			rl := relay.New(relay.Config{
				StreamID:           r.host.StreamID(),
				RetransLog:         sc.RetransLog,
				RefreshEvery:       refreshEvery,
				MinRefreshInterval: sc.Relay.MinRefreshInterval,
				Now:                r.clk.Now,
				Entropy:            entropyFrom(deriveSeed(sc.Seed, salt)),
			})
			if err := rl.AttachUpstream(up, true); err != nil {
				return nil, err
			}
			r.relays = append(r.relays, rl)
			up = rl
		}
		// Teardown deepest-first, so each relay detaches from a
		// still-open upstream.
		defer func() {
			for i := len(r.relays) - 1; i >= 0; i-- {
				_ = r.relays[i].Close()
			}
		}()
	}

	if sc.Broker != nil {
		d := sc.Broker.detectAfter()
		// The half-interval margin puts the timeout strictly between D
		// and D+1 missed beats, so detection lands exactly at tick
		// FailAtTick + D regardless of rounding.
		r.brk = broker.New(broker.Config{
			Now:              r.clk.Now,
			HeartbeatTimeout: time.Duration(d)*sc.TickInterval + sc.TickInterval/2,
		})
		r.brk.Register(&remoting.BrokerRegister{HostID: 1, Capacity: 64}, "sim://host-a")
		r.brk.Register(&remoting.BrokerRegister{HostID: 2, Capacity: 64}, "sim://host-b")
		// The standby: identical policy on its own entropy lane, with a
		// placeholder desktop the restore replaces wholesale.
		var tileCfgB *ah.TileStoreConfig
		if sc.TileStore {
			tileCfgB = &ah.TileStoreConfig{}
		}
		r.hostB, err = ah.New(ah.Config{
			Desktop:         display.NewDesktop(sc.DesktopW, sc.DesktopH),
			Retransmissions: true,
			RetransLog:      sc.RetransLog,
			TileStore:       tileCfgB,
			SendShards:      sc.SendShards,
			Stats:           r.coll,
			Now:             r.clk.Now,
			Entropy:         entropyFrom(deriveSeed(sc.Seed, "host-b-entropy")),
			RemoteTimeout:   sc.RemoteTimeout,
			MaxBacklogDwell: sc.MaxBacklogDwell,
			EvictionPolicy:  policy,
			BacklogLimit:    sc.BacklogLimit,
			Ladder:          sc.Ladder,
			OnEvict:         func(snap ah.RemoteHealth) { r.pendingEvicts = append(r.pendingEvicts, snap) },
		})
		if err != nil {
			return nil, err
		}
		defer r.hostB.Close()
		// Floor custody: the presenter (11) holds the HID floor and a
		// participant (12) queues behind it. The post-migration release
		// proves the broker carried BOTH the grant and the queue across
		// the handoff.
		r.floor = bfcp.NewFloor(1, func(uint16, *bfcp.Message) {})
		if err := r.floor.Request(11); err != nil {
			return nil, err
		}
		if err := r.floor.Request(12); err != nil {
			return nil, err
		}
	}

	specs := append([]ViewerSpec{{Name: "_ref", Kind: KindUDP, Profile: &Profile{Name: "pristine"}}}, sc.Viewers...)
	needBus := false
	for i, vs := range specs {
		prof := sc.Profile
		if vs.Profile != nil {
			prof = *vs.Profile
		}
		pcfg := participant.Config{
			Now:     r.clk.Now,
			Entropy: entropyFrom(deriveSeed(sc.Seed, "viewer-entropy/"+vs.Name)),
		}
		// Tile-store negotiation mirrors the attach options: unicast
		// viewers that did not opt out run a dictionary sized by their
		// spec (the group remote never sends references, so multicast
		// members stay plain, and relay viewers receive the un-substituted
		// shared batch the forwarders get).
		if sc.TileStore && !vs.NoTileStore && vs.Kind != KindMulticast && !vs.ViaRelay {
			pcfg.TileStore = true
			pcfg.TileDictCapacity = vs.TileDictCapacity
		}
		v := &viewerState{
			idx:  i,
			name: vs.Name,
			spec: vs,
			prof: prof,
			kind: vs.Kind,
			p:    participant.New(pcfg),
		}
		dcfg, ucfg := prof.Down, prof.Up
		dcfg.Seed = deriveSeed(sc.Seed, "link-down/"+vs.Name)
		ucfg.Seed = deriveSeed(sc.Seed, "link-up/"+vs.Name)
		v.down = transport.NewShaper(dcfg)
		v.up = transport.NewShaper(ucfg)
		r.viewers = append(r.viewers, v)
		r.byName[vs.Name] = v
		if vs.Kind == KindMulticast {
			needBus = true
		}
	}
	if needBus {
		r.bus = transport.NewBus()
		// The tap subscribes first with a lossless link: it observes
		// exactly what the host published to the group, feeding the
		// continuity and counter oracles.
		r.tapSub = r.bus.Subscribe(transport.LinkConfig{Seed: deriveSeed(sc.Seed, "group-tap"), QueueLen: 1 << 14})
		r.group, err = r.host.AttachMulticast("group", r.bus)
		if err != nil {
			return nil, err
		}
	}

	// Main phase: impaired links, workload-driven ticks.
	for t := 0; t < sc.Ticks; t++ {
		r.runTick(t, false)
	}

	// Quiesce phase: links heal, budgets lift, held datagrams flush, and
	// a sentinel pixel keeps one packet per tick flowing so undetected
	// tail loss surfaces as a sequence gap the repair loop can NACK.
	r.bypass = true
	for _, v := range r.viewers {
		v.down.SetDown(false)
		v.up.SetDown(false)
		if v.sconn != nil {
			v.sconn.setUnlimited()
		}
	}
	r.flushHeld()
	for q := 0; q < sc.QuiesceTicks; q++ {
		r.runTick(sc.Ticks+q, true)
		if r.events.Len() == 0 && r.multicastIdle() && r.allSettled() {
			break
		}
	}

	res := &Result{Scenario: sc.String(), Seed: sc.Seed, TicksRun: r.ticksRun}
	res.QualityDemotes = r.coll.Get("QualityDemote").Messages
	res.QualityPromotes = r.coll.Get("QualityPromote").Messages
	res.QualityFlaps = r.coll.Get("QualityFlap").Messages
	r.runOracles(res)

	// Detach everything only after the oracles ran: live remotes carry
	// the counter state the checks read.
	_ = r.host.Close()
	for _, v := range r.viewers {
		if v.conn != nil {
			_ = v.conn.Close()
		}
		if v.sconn != nil {
			_ = v.sconn.Close()
		}
		if v.sub != nil {
			_ = v.sub.Close()
		}
	}
	if r.tapSub != nil {
		_ = r.tapSub.Close()
	}

	if err := r.jw.Flush(); err != nil {
		return nil, err
	}
	res.Journal, err = trace.ReadAll(bytes.NewReader(r.jbuf.Bytes()))
	if err != nil {
		return nil, err
	}
	res.Digest = trace.Digest(res.Journal)
	return res, nil
}

// runTick executes one full simulated tick: partitions and joins, one
// workload step (or the quiesce sentinel), the host Tick, TCP settling,
// multicast draining, delayed-event processing, the repair phase, and
// the journal marker.
func (r *runner) runTick(tick int, quiesce bool) {
	interval := r.sc.TickInterval
	T := r.epoch.Add(time.Duration(tick) * interval)
	r.clk.set(T)
	r.tickNo = tick
	r.ticksRun++

	if !quiesce {
		if r.brk != nil {
			r.brokerStep(tick)
		}
		for _, v := range r.viewers {
			inPart := false
			for _, w := range v.prof.Partitions {
				if w.contains(tick) {
					inPart = true
					break
				}
			}
			v.down.SetDown(inPart)
			v.up.SetDown(inPart)
		}
		// Leaves before joins: a churn tick detaches last window's
		// joiners before this window's arrive, so the fleet size stays
		// bounded at the churn plateau.
		for _, v := range r.viewers {
			if v.joined && !v.left && !v.evicted && v.spec.LeaveAtTick == tick {
				v.left = true
				_ = v.remote.Close()
				r.journal('L', v.idx, []byte(v.name))
			}
		}
		for _, v := range r.viewers {
			if !v.joined && v.spec.JoinAtTick == tick {
				if err := r.attach(v); err != nil {
					r.tickErrs = append(r.tickErrs, fmt.Sprintf("tick %d: attach %s: %v", tick, v.name, err))
				}
			}
		}
		// The workload pauses while the host is dead — a crashed process
		// generates no activity — so the last checkpoint and the desktop
		// state stay aligned and the restored session resumes exactly
		// where the failed host stopped.
		if !r.hostDead {
			r.wl.Step()
		}
	} else {
		// Sentinel: one guaranteed change per quiesce tick, so a viewer
		// missing the tail of the main phase sees a sequence jump and
		// NACKs it instead of converging on stale pixels by accident.
		r.win.Fill(region.XYWH(0, 0, 2, 2), color.RGBA{R: byte(tick), G: 0x40, B: 0x80, A: 0xFF})
	}

	if !r.hostDead {
		if err := r.host.Tick(); err != nil {
			r.tickErrs = append(r.tickErrs, fmt.Sprintf("tick %d: %v", tick, err))
		}
		r.noteEvictions()
	}
	if r.brk != nil && !quiesce {
		r.brokerBeat()
	}

	for _, v := range r.viewers {
		if v.sconn != nil && v.joined && !v.evicted && !r.bypass {
			v.sconn.grant(v.budgetAtTick(tick))
		}
	}
	for _, v := range r.viewers {
		if v.sconn != nil && v.joined {
			r.settleStream(v)
			if len(v.spec.StreamBudgetSchedule) > 0 && !r.bypass {
				// Budget-schedule conns live tick to tick: surplus from a
				// generous phase expires at the boundary so the next
				// phase's squeeze takes effect immediately and the
				// queue-empty-or-budget-zero invariant holds at the next
				// sweep.
				v.sconn.expire()
			}
		}
	}
	r.drainMulticast()

	// Delayed/jittered datagrams land through the inter-tick interval;
	// the repair phase runs at the three-quarter point, as a real repair
	// loop ticking between frames would.
	r.runEventsUntil(T.Add(interval * 3 / 4))
	r.repair(tick)
	r.runEventsUntil(T.Add(interval))

	var tb [4]byte
	binary.BigEndian.PutUint32(tb[:], uint32(tick))
	r.journal('T', 0xFF, tb[:])
}

// attach connects a viewer to the host with its kind's transport.
func (r *runner) attach(v *viewerState) error {
	tiled := r.sc.TileStore && !v.spec.NoTileStore
	switch v.kind {
	case KindUDP:
		v.conn = newSimPacketConn(r, v)
		if v.spec.ViaRelay {
			// The edge leg: the chain level (not the origin) owns this
			// viewer. A non-empty cache is served synchronously right
			// here, on the runner goroutine — the late joiner's fast
			// first paint.
			rl := r.relays[v.spec.RelayLevel]
			rv, err := rl.AttachPacketConn(v.name, v.conn)
			if err != nil {
				return err
			}
			v.rv = rv
			v.relayNode = rl
			break
		}
		rem, err := r.host.AttachPacketConn(v.name, v.conn, ah.PacketOptions{TileStore: tiled})
		if err != nil {
			return err
		}
		v.remote = rem
		if r.migrated {
			// A post-migration joiner: the ONE kind of viewer the standby
			// may serve a full refresh (see oracleMigration).
			r.freshJoinsB++
		}
	case KindTCP:
		v.sconn = newStreamConn(v.spec.StreamBudgetPerTick > 0 || len(v.spec.StreamBudgetSchedule) > 0)
		rem, err := r.host.AttachStream(v.name, v.sconn, ah.StreamOptions{TileStore: tiled})
		if err != nil {
			return err
		}
		v.remote = rem
	case KindMulticast:
		cfg := v.prof.Down
		cfg.Seed = deriveSeed(r.sc.Seed, "mc-sub/"+v.name)
		cfg.QueueLen = 1 << 13
		v.sub = r.bus.Subscribe(cfg)
		v.remote = r.group
	}
	v.joined = true
	return nil
}

// noteEvictions journals the evictions the host performed during the
// just-finished Tick, in name order (the sweep iterates a map, so the
// callback order alone is not deterministic).
func (r *runner) noteEvictions() {
	if len(r.pendingEvicts) == 0 {
		return
	}
	sort.Slice(r.pendingEvicts, func(i, j int) bool { return r.pendingEvicts[i].ID < r.pendingEvicts[j].ID })
	for _, snap := range r.pendingEvicts {
		idx := 0xFF
		if v := r.byName[snap.ID]; v != nil {
			v.evicted = true
			v.evictedAt = snap.EvictedAt
			idx = v.idx
		}
		r.evictedNames = append(r.evictedNames, snap.ID)
		r.journal('E', idx, []byte(snap.ID))
	}
	r.pendingEvicts = r.pendingEvicts[:0]
}

// settleStream drives one TCP viewer's pipeline to a stable state and
// delivers the frames that arrived. The loop polls, but only for
// terminal states that cannot regress: the host is not sending (the
// runner owns Tick), so either everything framed has been accepted and
// the RatedWriter is idle, or the drain is parked on an exhausted
// budget, or the conn was closed by an eviction.
func (r *runner) settleStream(v *viewerState) {
	start := time.Now()
	for {
		_, _, _, closed := v.sconn.state()
		if closed {
			break
		}
		hs := v.remote.Health()
		expect := int64(hs.SentOctets) + 2*int64(hs.SentPackets)
		in, blocked, budget, closed := v.sconn.state()
		if closed {
			break
		}
		if in == expect && hs.QueuedBytes == 0 {
			break
		}
		if budget == 0 && blocked > 0 {
			break
		}
		if time.Since(start) > settleWallLimit {
			v.settleStuck = true
			break
		}
		time.Sleep(20 * time.Microsecond)
	}

	v.rxBuf = append(v.rxBuf, v.sconn.takeOut()...)
	for len(v.rxBuf) >= 2 {
		n := int(v.rxBuf[0])<<8 | int(v.rxBuf[1])
		if len(v.rxBuf) < 2+n {
			break
		}
		frame := copyOf(v.rxBuf[2 : 2+n])
		v.rxBuf = v.rxBuf[2+n:]
		v.tap = append(v.tap, copyOf(frame))
		frame = r.maybeCorrupt(v, frame)
		v.delivered++
		r.journal('D', v.idx, frame)
		r.deliverToViewer(v, frame)
	}
}

// drainMulticast empties the group tap and every subscriber of exactly
// the datagrams published so far. Publication is synchronous and the
// subscriber links are loss-only, so sent-dropped-drained is the exact
// pending count and Recv never blocks.
func (r *runner) drainMulticast() {
	if r.bus == nil {
		return
	}
	sent, dropped := r.tapSub.(subStatser).Stats()
	for pending := sent - dropped - r.tapDrained; pending > 0; pending-- {
		pkt, err := r.tapSub.Recv()
		if err != nil {
			break
		}
		r.tapDrained++
		r.groupTap = append(r.groupTap, pkt)
	}
	for _, v := range r.viewers {
		if v.kind != KindMulticast || !v.joined {
			continue
		}
		s, d := v.sub.(subStatser).Stats()
		for pending := s - d - v.mcDrained; pending > 0; pending-- {
			pkt, err := v.sub.Recv()
			if err != nil {
				break
			}
			v.mcDrained++
			pkt = r.maybeCorrupt(v, pkt)
			v.delivered++
			r.journal('D', v.idx, pkt)
			r.deliverToViewer(v, pkt)
		}
	}
}

// multicastIdle reports whether no published datagram is still waiting
// in a subscriber queue.
func (r *runner) multicastIdle() bool {
	if r.bus == nil {
		return true
	}
	sent, dropped := r.tapSub.(subStatser).Stats()
	if sent-dropped != r.tapDrained {
		return false
	}
	for _, v := range r.viewers {
		if v.kind != KindMulticast || !v.joined {
			continue
		}
		s, d := v.sub.(subStatser).Stats()
		if s-d != v.mcDrained {
			return false
		}
	}
	return true
}

// repair runs one feedback round for every live, speaking viewer at the
// current virtual instant: an RR always (the liveness heartbeat), then
// NACK and PLI for the datagram kinds that can lose packets.
func (r *runner) repair(tick int) {
	for _, v := range r.viewers {
		if !v.joined || v.left {
			continue
		}
		// FaultEvictFeedback keeps an evicted viewer's repair loop alive
		// (even one that went silent to earn the eviction): its feedback
		// lands in the mark-to-teardown window the eviction gates guard.
		evictedTalks := v.evicted && r.sc.Fault == FaultEvictFeedback
		if v.evicted && !evictedTalks {
			continue
		}
		if !evictedTalks && v.silencedAt(tick) {
			continue
		}
		if rr, err := v.p.BuildReceiverReport(); err == nil {
			r.sendUp(v, rr)
		}
		if r.sc.Fault == FaultSkipRepair || v.kind == KindTCP {
			continue
		}
		if nack, err := v.p.BuildNACK(); err == nil && nack != nil {
			r.sendUp(v, nack)
		}
		if evictedTalks && len(v.tap) > 0 {
			// The race's observable payload. An evicted viewer's trailing
			// losses are invisible to its own gap detector (nothing
			// arrives after them to expose the hole), but a real repair
			// loop learns the sender's highest sequence from SRs and
			// NACKs the tail. Play that role: NACK the last sequence the
			// host ever shipped here. It is certainly in the
			// retransmission log, so an un-gated host services it —
			// straight onto the torn-down transport.
			var hdr rtp.Header
			if _, err := hdr.Unmarshal(v.tap[len(v.tap)-1]); err == nil {
				nack, err := rtcp.Marshal(&rtcp.NACK{
					SenderSSRC: hdr.SSRC, MediaSSRC: hdr.SSRC,
					Pairs: []rtcp.NACKPair{{PID: hdr.SequenceNumber}},
				})
				if err == nil {
					r.sendUp(v, nack)
				}
			}
		}
		received, _, _, _ := v.p.Stats()
		now := r.clk.Now()
		if (v.p.NeedsRefresh() || received == 0 || evictedTalks) &&
			(v.lastPLIAt.IsZero() || now.Sub(v.lastPLIAt) >= pliHolddown) {
			if pli, err := v.p.BuildPLI(); err == nil {
				v.lastPLIAt = now
				r.sendUp(v, pli)
			}
		}
	}
}

// processEvent applies one heap event at its instant.
func (r *runner) processEvent(ev *event) {
	v := ev.v
	switch ev.kind {
	case evDeliverDown:
		pkt := r.maybeCorrupt(v, ev.pkt)
		v.delivered++
		r.journal('D', v.idx, pkt)
		r.deliverToViewer(v, pkt)
	case evDeliverUp:
		evictedTalks := v.evicted && r.sc.Fault == FaultEvictFeedback
		if (v.evicted && !evictedTalks) || v.left || (v.remote == nil && v.rv == nil) {
			r.journal('X', v.idx, []byte{1})
			return
		}
		if r.hostDead && v.rv == nil {
			// The host is dead: feedback sent into the failure window
			// vanishes, exactly as a crashed process would drop it.
			r.journal('X', v.idx, []byte{2})
			return
		}
		r.journal('U', v.idx, ev.pkt)
		if v.rv != nil {
			v.relayNode.HandleFeedback(v.rv, ev.pkt)
			return
		}
		r.host.HandleFeedback(v.remote, ev.pkt)
	case evDropDown:
		v.dropsDown++
		r.journal('X', v.idx, []byte{0})
	case evDropUp:
		r.journal('X', v.idx, []byte{1})
	}
}

// deliverToViewer demuxes one packet into the participant per RFC 5761.
func (r *runner) deliverToViewer(v *viewerState, pkt []byte) {
	if len(pkt) >= 2 && pkt[1] >= 200 && pkt[1] <= 207 {
		_, _ = v.p.HandleRTCP(pkt)
		return
	}
	_ = v.p.HandlePacket(pkt)
}

// maybeCorrupt implements FaultCorruptPayload: from the seventh
// datagram on, flip the final payload byte of everything delivered to
// the first configured viewer. The flip must be persistent — a single
// corrupted pixel would be silently overwritten by later updates to the
// same region and never reach the end-of-run oracles. The mutation-check
// test plants this fault and demands an oracle notices.
func (r *runner) maybeCorrupt(v *viewerState, pkt []byte) []byte {
	if r.sc.Fault == FaultCorruptPayload && v.idx == 1 &&
		v.delivered >= 6 && len(pkt) > 13 {
		pkt[len(pkt)-1] ^= 0x01
		r.corrupted = true
	}
	return pkt
}

// brokerStep runs the control plane's view of one tick: the scheduled
// host kill, the broker's liveness sweep while the host is dead (its
// orders drive the migration), and the post-handoff moderator action
// that probes floor custody.
func (r *runner) brokerStep(tick int) {
	if f := r.sc.Broker.FailAtTick; f > 0 && tick == f && !r.failed {
		// Hard kill: no goodbye, no flush. Close fires no sends and
		// never invokes OnEvict — the fleet and the broker just stop
		// hearing from the host.
		_ = r.host.Close()
		r.failed = true
		r.hostDead = true
		var tb [4]byte
		binary.BigEndian.PutUint32(tb[:], uint32(tick))
		r.journal('F', 0xFE, tb[:])
	}
	if r.hostDead {
		for _, order := range r.brk.Sweep() {
			r.migrate(tick, order)
		}
		return
	}
	// Two ticks after the handoff the moderator (11) releases the
	// floor: under restored custody the queued participant (12) is
	// granted; under dropped custody the release errors — the migration
	// oracle's observable for FaultDropFloorState.
	if r.migrated && !r.released && tick >= r.migratedAt+2 {
		r.released = true
		r.floorReleaseErr = r.floor.Release(11)
	}
}

// brokerBeat reports both hosts to the broker at the tick boundary.
// The active host's beat carries the full checkpoint — session
// snapshot plus floor custody; the standby's carries liveness only,
// keeping it placeable while it holds no sessions. Everything here is
// a pure read of host state, so broker custody leaves the journal of a
// failure-free run byte-identical to the broker-free run.
func (r *runner) brokerBeat() {
	if !r.failed || r.migrated {
		hostID := uint32(1)
		if r.migrated {
			hostID = 2
		}
		if err := r.beatActive(hostID); err != nil {
			r.tickErrs = append(r.tickErrs, fmt.Sprintf("tick %d: heartbeat host %d: %v", r.tickNo, hostID, err))
		}
	}
	if !r.migrated && r.hostB != nil {
		m := broker.HeartbeatFor(2, r.hostB)
		m.StreamID = 0 // no session yet: liveness only
		if err := r.brk.Heartbeat(&m, nil, nil); err != nil {
			r.tickErrs = append(r.tickErrs, fmt.Sprintf("tick %d: standby heartbeat: %v", r.tickNo, err))
		}
	}
}

// beatActive snapshots the live session and heartbeats it with floor
// custody attached.
func (r *runner) beatActive(hostID uint32) error {
	snap, err := r.host.SnapshotSession()
	if err != nil {
		return err
	}
	blob, err := snap.Marshal()
	if err != nil {
		return err
	}
	m := broker.HeartbeatFor(hostID, r.host)
	if m.StreamID == 0 {
		// The simulated session runs on wire stream id 0 (a valid id the
		// broker cannot use as a map key, since id 0 means "no session"
		// in a heartbeat). Synthesize a broker-side key in the MESSAGE
		// only: the checkpoint still carries the real stream id, so the
		// restore is wire-exact.
		m.StreamID = 1
	}
	return r.brk.Heartbeat(&m, blob, r.floor.State().Marshal())
}

// migrate applies one broker order: restore the checkpoint onto the
// standby, restore (or, under fault, lose) floor custody, re-target
// the workload at the rebuilt desktop, and resume every live viewer's
// transport on the new host — all within one virtual instant, before
// the tick's capture runs.
func (r *runner) migrate(tick int, order *broker.MigrationOrder) {
	snap, err := ah.UnmarshalSessionSnapshot(order.Checkpoint)
	if err != nil {
		r.tickErrs = append(r.tickErrs, fmt.Sprintf("tick %d: migrate: decode checkpoint: %v", tick, err))
		return
	}
	if r.sc.Fault == FaultCorruptSnapshot && len(snap.Remotes) > 0 {
		// The planted defect: one packetizer's next sequence number is
		// bumped, so the restored chain jumps — the continuity oracle
		// must notice, and the phantom gap also starves that viewer's
		// repair loop (the skipped sequence was never sent, so its NACK
		// can never be served).
		snap.Remotes[0].Packetizer.Seq++
	}
	if err := r.hostB.RestoreSession(snap); err != nil {
		r.tickErrs = append(r.tickErrs, fmt.Sprintf("tick %d: migrate: restore: %v", tick, err))
		return
	}
	if order.FloorState != nil && r.sc.Fault != FaultDropFloorState {
		fs, err := bfcp.UnmarshalFloorState(order.FloorState)
		if err != nil {
			r.tickErrs = append(r.tickErrs, fmt.Sprintf("tick %d: migrate: decode floor state: %v", tick, err))
			return
		}
		r.floor = bfcp.NewFloorFromState(fs, func(uint16, *bfcp.Message) {})
	} else {
		// Custody lost: all the destination can do is start a fresh
		// floor — no holder, no queue. The moderator's later release
		// exposes the loss.
		r.floor = bfcp.NewFloor(1, func(uint16, *bfcp.Message) {})
	}
	// RestoreSession rebuilt the desktop as a NEW object; re-resolve
	// the shared window and hand both back to the workload so its
	// generators continue on the restored surface.
	r.desk = r.hostB.Desktop()
	r.win = r.desk.Window(r.winID)
	if rb, ok := r.wl.(workload.Rebinder); ok {
		rb.Rebind(r.desk, r.win)
	}
	for _, v := range r.viewers {
		if !v.joined || v.left || v.evicted || v.conn == nil {
			continue
		}
		r.oldConns = append(r.oldConns, v.conn)
		v.conn = newSimPacketConn(r, v)
		rem, err := r.hostB.ResumePacketConn(v.name, v.conn, ah.PacketOptions{})
		if err != nil {
			r.tickErrs = append(r.tickErrs, fmt.Sprintf("tick %d: migrate: resume %s: %v", tick, v.name, err))
			continue
		}
		v.remote = rem
	}
	r.host = r.hostB
	r.hostDead = false
	r.migrated = true
	r.migratedAt = tick
	var tb [4]byte
	binary.BigEndian.PutUint32(tb[:], uint32(tick))
	r.journal('M', 0xFE, tb[:])
}

// journal appends one record: [kind][viewerIdx][payload...] at the
// current virtual instant.
func (r *runner) journal(kind byte, idx int, payload []byte) {
	rec := make([]byte, 0, 2+len(payload))
	rec = append(rec, kind, byte(idx))
	rec = append(rec, payload...)
	_ = r.jw.Record(r.clk.Now(), rec)
}
