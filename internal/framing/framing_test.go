package framing

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
)

func TestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := [][]byte{[]byte("hello"), {}, []byte("world"), bytes.Repeat([]byte{7}, 1000)}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range frames {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("trailing read err = %v, want io.EOF", err)
	}
}

func TestTooLarge(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteFrame(make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if err := w.WriteFrame(make([]byte, MaxFrameSize)); err != nil {
		t.Fatalf("max-size frame should succeed: %v", err)
	}
}

func TestMidFrameEOF(t *testing.T) {
	// Truncated length prefix.
	r := NewReader(bytes.NewReader([]byte{0x00}))
	if _, err := r.ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
	// Length promises 5 bytes; only 2 present.
	r = NewReader(bytes.NewReader([]byte{0x00, 0x05, 'a', 'b'}))
	if _, err := r.ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// drip delivers its payload one byte per Read call, simulating worst-case
// TCP segmentation.
type drip struct{ data []byte }

func (d *drip) Read(p []byte) (int, error) {
	if len(d.data) == 0 {
		return 0, io.EOF
	}
	p[0] = d.data[0]
	d.data = d.data[1:]
	return 1, nil
}

func TestByteAtATimeSegmentation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, f := range [][]byte{[]byte("abc"), []byte("defgh")} {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&drip{data: buf.Bytes()})
	a, err := r.ReadFrame()
	if err != nil || string(a) != "abc" {
		t.Fatalf("frame 1 = %q, %v", a, err)
	}
	b, err := r.ReadFrame()
	if err != nil || string(b) != "defgh" {
		t.Fatalf("frame 2 = %q, %v", b, err)
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(frames [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, fr := range frames {
			if len(fr) > MaxFrameSize {
				fr = fr[:MaxFrameSize]
			}
			if err := w.WriteFrame(fr); err != nil {
				return false
			}
		}
		r := NewReader(&buf)
		for _, fr := range frames {
			if len(fr) > MaxFrameSize {
				fr = fr[:MaxFrameSize]
			}
			got, err := r.ReadFrame()
			if err != nil || !bytes.Equal(got, fr) {
				return false
			}
		}
		_, err := r.ReadFrame()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWritersOverPipe(t *testing.T) {
	// Two goroutines (RTP + RTCP) share one framed TCP connection; frames
	// must never interleave partially.
	client, server := net.Pipe()
	defer client.Close()

	w := NewWriter(client)
	const perWriter = 50
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(tag byte) {
			defer wg.Done()
			frame := bytes.Repeat([]byte{tag}, 100)
			for i := 0; i < perWriter; i++ {
				if err := w.WriteFrame(frame); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(byte('A' + g))
	}
	go func() {
		wg.Wait()
		client.Close()
	}()

	r := NewReader(server)
	count := 0
	for {
		frame, err := r.ReadFrame()
		if err != nil {
			break
		}
		count++
		for _, b := range frame {
			if b != frame[0] {
				t.Fatalf("interleaved frame contents: %q", frame)
			}
		}
	}
	if count != 2*perWriter {
		t.Fatalf("read %d frames, want %d", count, 2*perWriter)
	}
}

// TestWriteFramesByteIdentity pins the WriteFrames contract: the byte
// stream is identical to sequential WriteFrame calls on BOTH write
// paths — the scratch concatenation used for plain writers and the
// net.Buffers gather list used when the writer is a net.Conn.
func TestWriteFramesByteIdentity(t *testing.T) {
	frames := [][]byte{
		[]byte("alpha"),
		{},
		bytes.Repeat([]byte{0xA5}, 1400),
		[]byte{0x00},
		bytes.Repeat([]byte{0x42}, 70000)[:MaxFrameSize],
	}

	var want bytes.Buffer
	seq := NewWriter(&want)
	for _, f := range frames {
		if err := seq.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}

	// Scratch path: a bytes.Buffer is not a net.Conn.
	var scratch bytes.Buffer
	if err := NewWriter(&scratch).WriteFrames(frames); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scratch.Bytes(), want.Bytes()) {
		t.Fatal("scratch WriteFrames bytes differ from sequential WriteFrame")
	}

	// Vectored path: net.Pipe satisfies net.Conn, so WriteFrames hands
	// the connection a gather list.
	client, server := net.Pipe()
	got := make(chan []byte)
	go func() {
		buf, _ := io.ReadAll(server)
		got <- buf
	}()
	w := NewWriter(client)
	if w.conn == nil {
		t.Fatal("net.Conn writer did not select the vectored path")
	}
	// Two batches back to back: the reusable header buffer and gather
	// list must not corrupt a second call.
	if err := w.WriteFrames(frames[:2]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrames(frames[2:]); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	if vec := <-got; !bytes.Equal(vec, want.Bytes()) {
		t.Fatal("vectored WriteFrames bytes differ from sequential WriteFrame")
	}

	// Oversized frames are rejected before any byte is written.
	var sink bytes.Buffer
	err := NewWriter(&sink).WriteFrames([][]byte{[]byte("ok"), make([]byte, MaxFrameSize+1)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize batch error = %v", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("oversize batch leaked %d bytes", sink.Len())
	}
}
