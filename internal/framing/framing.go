// Package framing implements RFC 4571 framing of RTP and RTCP packets
// over connection-oriented transports. Neither TCP nor RTP declares the
// length of an RTP packet, so each packet is prefixed with a 16-bit
// big-endian length when carried in a TCP byte stream (draft Section 4.4).
package framing

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MaxFrameSize is the largest packet representable by the 16-bit length
// prefix.
const MaxFrameSize = 0xFFFF

// ErrFrameTooLarge is returned when writing a packet longer than
// MaxFrameSize bytes.
var ErrFrameTooLarge = errors.New("framing: packet exceeds 65535 bytes")

// Writer frames packets onto an underlying stream. It is safe for
// concurrent use: RTP and RTCP goroutines may interleave whole frames.
type Writer struct {
	mu sync.Mutex
	w  io.Writer
	// scratch is the WriteFrames concatenation buffer, reused across
	// calls (guarded by mu).
	scratch []byte
}

// NewWriter returns a Writer framing onto w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteFrame writes one length-prefixed packet.
func (w *Writer) WriteFrame(pkt []byte) error {
	if len(pkt) > MaxFrameSize {
		return fmt.Errorf("%w: %d", ErrFrameTooLarge, len(pkt))
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(pkt)))
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(pkt)
	return err
}

// WriteFrames writes a run of length-prefixed packets as ONE underlying
// write — the writev-style aggregation the sharded send path batches
// fan-out with. The byte stream is identical to len(pkts) WriteFrame
// calls; only the write count changes. The concatenation buffer is
// reused across calls, so a steady fan-out allocates nothing here. The
// write is all-or-nothing with respect to whole frames as long as the
// underlying writer is (transport.RatedWriter is: it copies the buffer
// or fails).
func (w *Writer) WriteFrames(pkts [][]byte) error {
	if len(pkts) == 0 {
		return nil
	}
	total := 0
	for _, pkt := range pkts {
		if len(pkt) > MaxFrameSize {
			return fmt.Errorf("%w: %d", ErrFrameTooLarge, len(pkt))
		}
		total += 2 + len(pkt)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if cap(w.scratch) < total {
		w.scratch = make([]byte, 0, total)
	}
	buf := w.scratch[:0]
	for _, pkt := range pkts {
		var hdr [2]byte
		binary.BigEndian.PutUint16(hdr[:], uint16(len(pkt)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, pkt...)
	}
	w.scratch = buf[:0]
	_, err := w.w.Write(buf)
	return err
}

// Reader extracts length-prefixed packets from an underlying stream,
// tolerating arbitrary TCP segmentation (a frame may arrive split across
// reads or merged with its neighbors).
type Reader struct {
	r *bufio.Reader
}

// NewReader returns a Reader framing from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// ReadFrame reads the next packet. It returns io.EOF cleanly at a frame
// boundary and io.ErrUnexpectedEOF mid-frame.
func (r *Reader) ReadFrame() ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr[:]))
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
