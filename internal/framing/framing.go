// Package framing implements RFC 4571 framing of RTP and RTCP packets
// over connection-oriented transports. Neither TCP nor RTP declares the
// length of an RTP packet, so each packet is prefixed with a 16-bit
// big-endian length when carried in a TCP byte stream (draft Section 4.4).
package framing

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxFrameSize is the largest packet representable by the 16-bit length
// prefix.
const MaxFrameSize = 0xFFFF

// ErrFrameTooLarge is returned when writing a packet longer than
// MaxFrameSize bytes.
var ErrFrameTooLarge = errors.New("framing: packet exceeds 65535 bytes")

// Writer frames packets onto an underlying stream. It is safe for
// concurrent use: RTP and RTCP goroutines may interleave whole frames.
type Writer struct {
	mu sync.Mutex
	w  io.Writer
	// conn is non-nil when w is a real socket: WriteFrames then hands the
	// kernel a net.Buffers gather list (one writev) instead of copying
	// everything through scratch first.
	conn net.Conn
	// scratch is the WriteFrames concatenation buffer, reused across
	// calls (guarded by mu).
	scratch []byte
	// hdrs and vecs are the vectored path's reusable header storage and
	// gather list (guarded by mu).
	hdrs []byte
	vecs net.Buffers
}

// NewWriter returns a Writer framing onto w. When w is a net.Conn the
// batched WriteFrames path writes a gather list directly (the OS writev
// fast path); other writers — notably transport.RatedWriter, which must
// account the bytes as one atomic buffer — get the single concatenated
// write. The byte stream on the wire is identical either way.
func NewWriter(w io.Writer) *Writer {
	fw := &Writer{w: w}
	if c, ok := w.(net.Conn); ok {
		fw.conn = c
	}
	return fw
}

// WriteFrame writes one length-prefixed packet.
func (w *Writer) WriteFrame(pkt []byte) error {
	if len(pkt) > MaxFrameSize {
		return fmt.Errorf("%w: %d", ErrFrameTooLarge, len(pkt))
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(pkt)))
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(pkt)
	return err
}

// WriteFrames writes a run of length-prefixed packets as ONE underlying
// write — the writev-style aggregation the sharded send path batches
// fan-out with. The byte stream is identical to len(pkts) WriteFrame
// calls; only the write count changes. The concatenation buffer is
// reused across calls, so a steady fan-out allocates nothing here. The
// write is all-or-nothing with respect to whole frames as long as the
// underlying writer is (transport.RatedWriter is: it copies the buffer
// or fails).
func (w *Writer) WriteFrames(pkts [][]byte) error {
	if len(pkts) == 0 {
		return nil
	}
	total := 0
	for _, pkt := range pkts {
		if len(pkt) > MaxFrameSize {
			return fmt.Errorf("%w: %d", ErrFrameTooLarge, len(pkt))
		}
		total += 2 + len(pkt)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn != nil {
		// Vectored path: alternate 2-byte length prefixes (backed by one
		// reusable header buffer, pre-sized so the loop never reallocates
		// it) with the caller's payloads and let net.Buffers drive writev.
		// No payload byte is copied in user space.
		if cap(w.hdrs) < 2*len(pkts) {
			w.hdrs = make([]byte, 0, 2*len(pkts))
		}
		hdrs := w.hdrs[:0]
		vecs := w.vecs[:0]
		for _, pkt := range pkts {
			off := len(hdrs)
			hdrs = append(hdrs, byte(len(pkt)>>8), byte(len(pkt)))
			vecs = append(vecs, hdrs[off:off+2], pkt)
		}
		w.hdrs = hdrs
		_, err := vecs.WriteTo(w.conn)
		// WriteTo consumes the gather list in place; keep its capacity.
		w.vecs = vecs[:0]
		return err
	}
	if cap(w.scratch) < total {
		w.scratch = make([]byte, 0, total)
	}
	buf := w.scratch[:0]
	for _, pkt := range pkts {
		var hdr [2]byte
		binary.BigEndian.PutUint16(hdr[:], uint16(len(pkt)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, pkt...)
	}
	w.scratch = buf[:0]
	_, err := w.w.Write(buf)
	return err
}

// Reader extracts length-prefixed packets from an underlying stream,
// tolerating arbitrary TCP segmentation (a frame may arrive split across
// reads or merged with its neighbors).
type Reader struct {
	r *bufio.Reader
}

// NewReader returns a Reader framing from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// ReadFrame reads the next packet. It returns io.EOF cleanly at a frame
// boundary and io.ErrUnexpectedEOF mid-frame.
func (r *Reader) ReadFrame() ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr[:]))
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}
