package bfcp

import (
	"errors"
	"sync"
)

// Floor moderates the AH's human interface devices among participants:
// "BFCP receives floor request and floor release messages from
// participants; and then it grants the floor to the appropriate
// participant for a period of time while keeping the requests from other
// participants in a FIFO queue" (draft Section 4.2).
//
// Floor is safe for concurrent use.
type Floor struct {
	mu      sync.Mutex
	holder  uint16
	hasHold bool
	queue   []uint16
	status  HIDStatus
	// notify receives every message the floor chair would send; the AH
	// forwards them to participants.
	notify func(userID uint16, msg *Message)
	conf   uint32
	nextTx uint16
}

// NewFloor returns a floor for the given conference. notify, if non-nil,
// receives every chair-originated message addressed to a user.
func NewFloor(conferenceID uint32, notify func(userID uint16, msg *Message)) *Floor {
	return &Floor{
		status: StateAllAllowed,
		notify: notify,
		conf:   conferenceID,
	}
}

// Errors returned by floor operations.
var (
	ErrAlreadyQueued = errors.New("bfcp: user already holds or queued for the floor")
	ErrNotHolder     = errors.New("bfcp: user does not hold the floor")
)

func (f *Floor) send(userID uint16, m *Message) {
	m.ConferenceID = f.conf
	f.nextTx++
	m.TransactionID = f.nextTx
	m.UserID = userID
	if f.notify != nil {
		f.notify(userID, m)
	}
}

// Request handles a FloorRequest from userID. If the floor is free it is
// granted immediately (FloorGranted with the current HID status);
// otherwise the user joins the FIFO queue and receives
// FloorRequestQueued with its position.
func (f *Floor) Request(userID uint16) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hasHold && f.holder == userID {
		return ErrAlreadyQueued
	}
	for _, q := range f.queue {
		if q == userID {
			return ErrAlreadyQueued
		}
	}
	if !f.hasHold {
		f.grantLocked(userID)
		return nil
	}
	f.queue = append(f.queue, userID)
	f.send(userID, &Message{Primitive: FloorRequestQueued, QueuePosition: uint16(len(f.queue))})
	return nil
}

// Release handles a FloorRelease from the current holder: the holder
// receives FloorReleased and the head of the queue (if any) is granted.
func (f *Floor) Release(userID uint16) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.hasHold || f.holder != userID {
		// A queued user may also withdraw its request.
		for i, q := range f.queue {
			if q == userID {
				f.queue = append(f.queue[:i], f.queue[i+1:]...)
				f.send(userID, &Message{Primitive: FloorReleased})
				return nil
			}
		}
		return ErrNotHolder
	}
	f.hasHold = false
	f.send(userID, &Message{Primitive: FloorReleased})
	if len(f.queue) > 0 {
		next := f.queue[0]
		f.queue = f.queue[1:]
		f.grantLocked(next)
	}
	return nil
}

func (f *Floor) grantLocked(userID uint16) {
	f.hasHold = true
	f.holder = userID
	f.send(userID, &Message{Primitive: FloorGranted, HIDStatus: f.status})
}

// Holder returns the current floor holder, if any.
func (f *Floor) Holder() (uint16, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.holder, f.hasHold
}

// QueueLen returns the number of queued requests.
func (f *Floor) QueueLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue)
}

// SetHIDStatus changes the HID permission state without revoking the
// floor (Appendix A: "the AH MAY temporarily block HID events without
// revoking the floor control"). The current holder, if any, is informed
// via a fresh FloorGranted message carrying the new status.
func (f *Floor) SetHIDStatus(s HIDStatus) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.status = s
	if f.hasHold {
		f.send(f.holder, &Message{Primitive: FloorGranted, HIDStatus: s})
	}
}

// HIDStatus returns the current HID permission state.
func (f *Floor) HIDStatus() HIDStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status
}

// MayUseKeyboard reports whether userID's keyboard events should be
// regenerated right now.
func (f *Floor) MayUseKeyboard(userID uint16) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hasHold && f.holder == userID && f.status.AllowsKeyboard()
}

// MayUseMouse reports whether userID's mouse events should be
// regenerated right now.
func (f *Floor) MayUseMouse(userID uint16) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hasHold && f.holder == userID && f.status.AllowsMouse()
}

// Drop removes a departed user entirely: releases the floor if held,
// dequeues if queued.
func (f *Floor) Drop(userID uint16) {
	f.mu.Lock()
	held := f.hasHold && f.holder == userID
	f.mu.Unlock()
	if held {
		_ = f.Release(userID)
		return
	}
	f.mu.Lock()
	for i, q := range f.queue {
		if q == userID {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			break
		}
	}
	f.mu.Unlock()
}
