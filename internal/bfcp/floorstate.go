package bfcp

import (
	"fmt"

	"appshare/internal/wire"
)

// FloorState is the serializable moderation state of a Floor: who holds
// the HID floor, who is queued for it (FIFO order), the current HID
// permission status, and the chair's transaction counter. The session
// broker holds this state so moderation survives host churn: a migrated
// session's new host resumes granting from exactly the queue the old
// host left, with no duplicate or reset TransactionIDs.
type FloorState struct {
	ConferenceID uint32
	Holder       uint16
	HasHolder    bool
	Queue        []uint16
	Status       HIDStatus
	NextTx       uint16
}

// floorStateVersion guards the FloorState wire encoding.
const floorStateVersion = 1

// State captures the floor's moderation state.
func (f *Floor) State() FloorState {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FloorState{
		ConferenceID: f.conf,
		Holder:       f.holder,
		HasHolder:    f.hasHold,
		Status:       f.status,
		NextTx:       f.nextTx,
	}
	if len(f.queue) > 0 {
		s.Queue = append([]uint16(nil), f.queue...)
	}
	return s
}

// NewFloorFromState reconstructs a Floor continuing exactly where
// State() left off. notify receives chair messages as in NewFloor; no
// messages are (re)sent during restore — viewers already hold their
// grants, and replaying them would desynchronize transaction IDs.
func NewFloorFromState(s FloorState, notify func(userID uint16, msg *Message)) *Floor {
	f := NewFloor(s.ConferenceID, notify)
	f.holder = s.Holder
	f.hasHold = s.HasHolder
	if len(s.Queue) > 0 {
		f.queue = append([]uint16(nil), s.Queue...)
	}
	f.status = s.Status
	f.nextTx = s.NextTx
	return f
}

// Marshal encodes the state for the broker's session record.
func (s FloorState) Marshal() []byte {
	w := wire.NewWriter(16 + 2*len(s.Queue))
	w.Uint8(floorStateVersion)
	w.Uint32(s.ConferenceID)
	w.Uint16(s.Holder)
	var has uint8
	if s.HasHolder {
		has = 1
	}
	w.Uint8(has)
	w.Uint16(uint16(s.Status))
	w.Uint16(s.NextTx)
	w.Uint16(uint16(len(s.Queue)))
	for _, q := range s.Queue {
		w.Uint16(q)
	}
	return w.Bytes()
}

// UnmarshalFloorState decodes a Marshal encoding.
func UnmarshalFloorState(b []byte) (FloorState, error) {
	r := wire.NewReader(b)
	if v := r.Uint8(); r.Err() == nil && v != floorStateVersion {
		return FloorState{}, fmt.Errorf("bfcp: floor state version %d unsupported", v)
	}
	var s FloorState
	s.ConferenceID = r.Uint32()
	s.Holder = r.Uint16()
	s.HasHolder = r.Uint8() != 0
	s.Status = HIDStatus(r.Uint16())
	s.NextTx = r.Uint16()
	n := int(r.Uint16())
	for i := 0; i < n; i++ {
		s.Queue = append(s.Queue, r.Uint16())
	}
	if r.Err() != nil {
		return FloorState{}, fmt.Errorf("bfcp: floor state: %w", r.Err())
	}
	if r.Len() != 0 {
		return FloorState{}, fmt.Errorf("bfcp: floor state: %d trailing bytes", r.Len())
	}
	if s.Status > StateAllAllowed {
		return FloorState{}, fmt.Errorf("bfcp: floor state: bad HID status %d", s.Status)
	}
	return s, nil
}
