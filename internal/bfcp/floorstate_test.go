package bfcp

import (
	"reflect"
	"testing"
)

// TestFloorStateRoundTrip drives the serialization the broker's floor
// handoff depends on through its edge cases: each case builds a live
// Floor, captures it, round-trips the bytes, restores, and checks the
// restored floor behaves identically to the original.
func TestFloorStateRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		setup func(f *Floor)
	}{
		{"empty-floor", func(f *Floor) {}},
		{"held-no-queue", func(f *Floor) {
			mustNoErr(t, f.Request(10))
		}},
		{"queued-requests", func(f *Floor) {
			mustNoErr(t, f.Request(10))
			mustNoErr(t, f.Request(11))
			mustNoErr(t, f.Request(12))
			mustNoErr(t, f.Request(13))
		}},
		{"revoked-grant", func(f *Floor) {
			// Grant, queue a second user, then revoke the holder: the
			// queued user inherits the floor and the queue drains — the
			// state after a moderation churn burst.
			mustNoErr(t, f.Request(10))
			mustNoErr(t, f.Request(11))
			f.Drop(10)
		}},
		{"restricted-status", func(f *Floor) {
			f.SetHIDStatus(StateMouseAllowed)
			mustNoErr(t, f.Request(10))
			mustNoErr(t, f.Request(11))
		}},
		{"withdrawn-request", func(f *Floor) {
			mustNoErr(t, f.Request(10))
			mustNoErr(t, f.Request(11))
			mustNoErr(t, f.Request(12))
			mustNoErr(t, f.Release(11)) // queued user withdraws
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := NewFloor(7, nil)
			tc.setup(f)

			st := f.State()
			b := st.Marshal()
			got, err := UnmarshalFloorState(b)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if !reflect.DeepEqual(st, got) {
				t.Fatalf("round trip diverged:\n  in:  %+v\n  out: %+v", st, got)
			}

			// The restored floor must behave like the original: same
			// holder, queue, status, and — critically for transaction-ID
			// continuity — the same message stamps on the next grant.
			var origMsgs, restMsgs []Message
			orig := NewFloorFromState(st, func(_ uint16, m *Message) { origMsgs = append(origMsgs, *m) })
			rest := NewFloorFromState(got, func(_ uint16, m *Message) { restMsgs = append(restMsgs, *m) })

			oh, ohas := orig.Holder()
			rh, rhas := rest.Holder()
			if oh != rh || ohas != rhas {
				t.Fatalf("holder diverged: (%d,%v) vs (%d,%v)", oh, ohas, rh, rhas)
			}
			if orig.QueueLen() != rest.QueueLen() {
				t.Fatalf("queue length diverged: %d vs %d", orig.QueueLen(), rest.QueueLen())
			}
			if orig.HIDStatus() != rest.HIDStatus() {
				t.Fatalf("HID status diverged: %v vs %v", orig.HIDStatus(), rest.HIDStatus())
			}

			// Drive one full churn through both floors and demand
			// identical chair traffic (including TransactionIDs).
			churn := func(f *Floor) {
				_ = f.Request(40)
				if h, ok := f.Holder(); ok {
					_ = f.Release(h)
				}
			}
			churn(orig)
			churn(rest)
			if !reflect.DeepEqual(origMsgs, restMsgs) {
				t.Fatalf("chair traffic diverged after restore:\n  orig: %+v\n  rest: %+v", origMsgs, restMsgs)
			}
		})
	}
}

// TestFloorStateUnmarshalErrors checks the decoder rejects malformed
// encodings instead of fabricating moderation state.
func TestFloorStateUnmarshalErrors(t *testing.T) {
	good := FloorState{ConferenceID: 7, Holder: 10, HasHolder: true, Queue: []uint16{11, 12}, Status: StateAllAllowed, NextTx: 4}.Marshal()
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"truncated-header", good[:5]},
		{"truncated-queue", good[:len(good)-1]},
		{"trailing-garbage", append(append([]byte{}, good...), 0xFF)},
		{"bad-version", append([]byte{99}, good[1:]...)},
		{"bad-status", func() []byte {
			b := append([]byte{}, good...)
			b[8], b[9] = 0xFF, 0xFF // status field
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalFloorState(tc.b); err == nil {
				t.Fatal("malformed floor state decoded without error")
			}
		})
	}
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
