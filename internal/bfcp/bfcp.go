// Package bfcp implements the subset of the Binary Floor Control Protocol
// (RFC 4582) that draft-boyaci-avt-app-sharing-00 Appendix A requires for
// moderating access to the AH's human interface devices: the five
// mandatory primitives — FloorRequest, FloorRelease, FloorGranted ("Floor
// Granted"), FloorReleased and FloorRequestQueued — a FIFO floor queue,
// and the HID-status values of Figure 20 carried to the floor holder.
//
// In the application-sharing context the floor is the AH's keyboard and
// mouse: while one participant holds the floor, only its HIP events are
// regenerated. The AH MAY temporarily block HID events without revoking
// the floor (for example when the shared application loses focus),
// signalling the current holder through the HID status of a fresh
// FloorGranted message.
package bfcp

import (
	"errors"
	"fmt"

	"appshare/internal/wire"
)

// Primitive identifies a BFCP message (RFC 4582 Section 5.1). Only the
// five primitives mandated by Appendix A are implemented.
type Primitive uint8

// Mandatory primitives for application and desktop sharing (Appendix A).
const (
	FloorRequest       Primitive = 1
	FloorRelease       Primitive = 2
	FloorRequestQueued Primitive = 9 // carried as FloorRequestStatus(queued)
	FloorGranted       Primitive = 10
	FloorReleased      Primitive = 11
)

// String implements fmt.Stringer.
func (p Primitive) String() string {
	switch p {
	case FloorRequest:
		return "FloorRequest"
	case FloorRelease:
		return "FloorRelease"
	case FloorRequestQueued:
		return "FloorRequestQueued"
	case FloorGranted:
		return "FloorGranted"
	case FloorReleased:
		return "FloorReleased"
	default:
		return fmt.Sprintf("Primitive(%d)", uint8(p))
	}
}

// HIDStatus is the 16-bit status carried in the STATUS-INFO attribute of
// FloorGranted messages (Figure 20).
type HIDStatus uint16

// HID status values (Figure 20).
const (
	StateNotAllowed      HIDStatus = 0
	StateKeyboardAllowed HIDStatus = 1
	StateMouseAllowed    HIDStatus = 2
	StateAllAllowed      HIDStatus = 3
)

// String implements fmt.Stringer.
func (s HIDStatus) String() string {
	switch s {
	case StateNotAllowed:
		return "STATE_NOT_ALLOWED"
	case StateKeyboardAllowed:
		return "STATE_KEYBOARD_ALLOWED"
	case StateMouseAllowed:
		return "STATE_MOUSE_ALLOWED"
	case StateAllAllowed:
		return "STATE_ALL_ALLOWED"
	default:
		return fmt.Sprintf("HIDStatus(%d)", uint16(s))
	}
}

// AllowsKeyboard reports whether keyboard events may be regenerated.
func (s HIDStatus) AllowsKeyboard() bool {
	return s == StateKeyboardAllowed || s == StateAllAllowed
}

// AllowsMouse reports whether mouse events may be regenerated.
func (s HIDStatus) AllowsMouse() bool {
	return s == StateMouseAllowed || s == StateAllAllowed
}

// Message is one BFCP message of the Appendix A subset.
//
// Wire format (condensed from RFC 4582 Section 5.1): the 12-byte common
// header carrying version, primitive, payload length, ConferenceID,
// TransactionID and UserID, followed for FloorGranted by a 4-byte
// STATUS-INFO attribute carrying the HID status, and for
// FloorRequestQueued by a 4-byte position attribute.
type Message struct {
	Primitive     Primitive
	ConferenceID  uint32
	TransactionID uint16
	UserID        uint16
	// HIDStatus is meaningful for FloorGranted messages.
	HIDStatus HIDStatus
	// QueuePosition is meaningful for FloorRequestQueued messages
	// (1 = next in line).
	QueuePosition uint16
}

const (
	version    = 1
	headerSize = 12
)

// Decoding errors.
var (
	ErrTruncated  = errors.New("bfcp: truncated message")
	ErrBadVersion = errors.New("bfcp: bad version")
)

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	attrLen := 0
	switch m.Primitive {
	case FloorGranted, FloorRequestQueued:
		attrLen = 4
	case FloorRequest, FloorRelease, FloorReleased:
	default:
		return nil, fmt.Errorf("bfcp: cannot marshal primitive %v", m.Primitive)
	}
	w := wire.NewWriter(headerSize + attrLen)
	w.Uint8(version << 5)
	w.Uint8(uint8(m.Primitive))
	w.Uint16(uint16(attrLen / 4)) // payload length in 32-bit words
	w.Uint32(m.ConferenceID)
	w.Uint16(m.TransactionID)
	w.Uint16(m.UserID)
	switch m.Primitive {
	case FloorGranted:
		w.Uint16(uint16(m.HIDStatus))
		w.Uint16(0)
	case FloorRequestQueued:
		w.Uint16(m.QueuePosition)
		w.Uint16(0)
	}
	return w.Bytes(), nil
}

// Unmarshal decodes a message.
func Unmarshal(buf []byte) (*Message, error) {
	if len(buf) < headerSize {
		return nil, ErrTruncated
	}
	if buf[0]>>5 != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, buf[0]>>5)
	}
	r := wire.NewReader(buf)
	r.Skip(1)
	m := &Message{Primitive: Primitive(r.Uint8())}
	payloadWords := int(r.Uint16())
	m.ConferenceID = r.Uint32()
	m.TransactionID = r.Uint16()
	m.UserID = r.Uint16()
	if r.Len() < payloadWords*4 {
		return nil, ErrTruncated
	}
	switch m.Primitive {
	case FloorGranted:
		if payloadWords >= 1 {
			m.HIDStatus = HIDStatus(r.Uint16())
			r.Skip(2)
		}
	case FloorRequestQueued:
		if payloadWords >= 1 {
			m.QueuePosition = r.Uint16()
			r.Skip(2)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
