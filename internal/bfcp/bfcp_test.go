package bfcp

import (
	"testing"
	"testing/quick"
)

func TestMessageRoundtrip(t *testing.T) {
	msgs := []*Message{
		{Primitive: FloorRequest, ConferenceID: 7, UserID: 3},
		{Primitive: FloorRelease, ConferenceID: 7, UserID: 3},
		{Primitive: FloorGranted, ConferenceID: 7, UserID: 3, HIDStatus: StateMouseAllowed},
		{Primitive: FloorReleased, ConferenceID: 7, UserID: 3},
		{Primitive: FloorRequestQueued, ConferenceID: 7, UserID: 3, QueuePosition: 2},
	}
	for _, in := range msgs {
		in.TransactionID = 42
		buf, err := in.Marshal()
		if err != nil {
			t.Fatalf("%v: %v", in.Primitive, err)
		}
		out, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%v: %v", in.Primitive, err)
		}
		if *out != *in {
			t.Fatalf("roundtrip %v: got %+v, want %+v", in.Primitive, out, in)
		}
	}
}

func TestMessageErrors(t *testing.T) {
	if _, err := (&Message{Primitive: Primitive(99)}).Marshal(); err == nil {
		t.Error("unknown primitive should fail")
	}
	if _, err := Unmarshal([]byte{0x20, 1}); err != ErrTruncated {
		t.Errorf("short buffer err = %v", err)
	}
	buf, err := (&Message{Primitive: FloorRequest}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 0x40 // version 2
	if _, err := Unmarshal(buf); err == nil {
		t.Error("bad version should fail")
	}
	// FloorGranted claiming a payload longer than present.
	granted, err := (&Message{Primitive: FloorGranted}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	granted[2], granted[3] = 0, 9 // 9 words promised
	if _, err := Unmarshal(granted); err != ErrTruncated {
		t.Errorf("overlong payload err = %v", err)
	}
}

func TestHIDStatusValues(t *testing.T) {
	// Figure 20 values.
	if StateNotAllowed != 0 || StateKeyboardAllowed != 1 || StateMouseAllowed != 2 || StateAllAllowed != 3 {
		t.Fatal("Figure 20 values wrong")
	}
	cases := []struct {
		s        HIDStatus
		kbd, mou bool
		name     string
	}{
		{StateNotAllowed, false, false, "STATE_NOT_ALLOWED"},
		{StateKeyboardAllowed, true, false, "STATE_KEYBOARD_ALLOWED"},
		{StateMouseAllowed, false, true, "STATE_MOUSE_ALLOWED"},
		{StateAllAllowed, true, true, "STATE_ALL_ALLOWED"},
	}
	for _, c := range cases {
		if c.s.AllowsKeyboard() != c.kbd || c.s.AllowsMouse() != c.mou {
			t.Errorf("%v permissions wrong", c.s)
		}
		if c.s.String() != c.name {
			t.Errorf("String = %q, want %q", c.s.String(), c.name)
		}
	}
}

// chairLog records chair-originated messages per user.
type chairLog struct {
	msgs []*Message
	to   []uint16
}

func (l *chairLog) notify(userID uint16, m *Message) {
	l.msgs = append(l.msgs, m)
	l.to = append(l.to, userID)
}

func (l *chairLog) last() (*Message, uint16) {
	if len(l.msgs) == 0 {
		return nil, 0
	}
	return l.msgs[len(l.msgs)-1], l.to[len(l.to)-1]
}

// TestBFCPFloorFIFO reproduces the Appendix A flow (experiment E15):
// grants are immediate when free, queued FIFO when busy.
func TestBFCPFloorFIFO(t *testing.T) {
	log := &chairLog{}
	f := NewFloor(1, log.notify)

	// User 10 gets the floor immediately.
	if err := f.Request(10); err != nil {
		t.Fatal(err)
	}
	m, to := log.last()
	if m.Primitive != FloorGranted || to != 10 || m.HIDStatus != StateAllAllowed {
		t.Fatalf("grant = %+v to %d", m, to)
	}
	if h, ok := f.Holder(); !ok || h != 10 {
		t.Fatal("holder wrong")
	}

	// Users 11 and 12 queue in order.
	if err := f.Request(11); err != nil {
		t.Fatal(err)
	}
	m, to = log.last()
	if m.Primitive != FloorRequestQueued || to != 11 || m.QueuePosition != 1 {
		t.Fatalf("queued = %+v to %d", m, to)
	}
	if err := f.Request(12); err != nil {
		t.Fatal(err)
	}
	m, _ = log.last()
	if m.QueuePosition != 2 {
		t.Fatalf("second queue position = %d", m.QueuePosition)
	}
	// Duplicate requests rejected.
	if err := f.Request(10); err != ErrAlreadyQueued {
		t.Fatalf("holder re-request err = %v", err)
	}
	if err := f.Request(11); err != ErrAlreadyQueued {
		t.Fatalf("queued re-request err = %v", err)
	}

	// Release: 11 (FIFO head) is granted, not 12.
	if err := f.Release(10); err != nil {
		t.Fatal(err)
	}
	m, to = log.last()
	if m.Primitive != FloorGranted || to != 11 {
		t.Fatalf("after release: %+v to %d", m, to)
	}
	if f.QueueLen() != 1 {
		t.Fatalf("queue = %d", f.QueueLen())
	}

	// Non-holder release fails.
	if err := f.Release(99); err != ErrNotHolder {
		t.Fatalf("stranger release err = %v", err)
	}
	// Queued user can withdraw.
	if err := f.Release(12); err != nil {
		t.Fatal(err)
	}
	if f.QueueLen() != 0 {
		t.Fatal("withdraw did not dequeue")
	}
}

func TestHIDStatusBlockingWithoutRevocation(t *testing.T) {
	log := &chairLog{}
	f := NewFloor(1, log.notify)
	if err := f.Request(5); err != nil {
		t.Fatal(err)
	}
	if !f.MayUseKeyboard(5) || !f.MayUseMouse(5) {
		t.Fatal("holder should start with all HIDs")
	}
	if f.MayUseKeyboard(6) {
		t.Fatal("non-holder must not use HIDs")
	}

	// AH blocks keyboard while keeping the floor granted.
	f.SetHIDStatus(StateMouseAllowed)
	m, to := log.last()
	if m.Primitive != FloorGranted || to != 5 || m.HIDStatus != StateMouseAllowed {
		t.Fatalf("status update = %+v to %d", m, to)
	}
	if f.MayUseKeyboard(5) {
		t.Fatal("keyboard should be blocked")
	}
	if !f.MayUseMouse(5) {
		t.Fatal("mouse should still be allowed")
	}
	if h, ok := f.Holder(); !ok || h != 5 {
		t.Fatal("floor must not be revoked by status change")
	}
}

func TestDrop(t *testing.T) {
	f := NewFloor(1, nil)
	if err := f.Request(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Request(2); err != nil {
		t.Fatal(err)
	}
	// Dropping the holder promotes the queue head.
	f.Drop(1)
	if h, ok := f.Holder(); !ok || h != 2 {
		t.Fatalf("holder after drop = %d, %v", h, ok)
	}
	// Dropping a queued user removes it silently.
	if err := f.Request(3); err != nil {
		t.Fatal(err)
	}
	f.Drop(3)
	if f.QueueLen() != 0 {
		t.Fatal("queued user not dropped")
	}
	// Dropping an unknown user is a no-op.
	f.Drop(99)
}

func TestQuickFloorFIFOOrder(t *testing.T) {
	// For any request order, grants happen in exactly request order.
	f := func(raw []uint16) bool {
		seen := map[uint16]bool{}
		var users []uint16
		for _, u := range raw {
			if !seen[u] {
				seen[u] = true
				users = append(users, u)
			}
		}
		if len(users) == 0 {
			return true
		}
		var grants []uint16
		fl := NewFloor(1, func(uid uint16, m *Message) {
			if m.Primitive == FloorGranted {
				grants = append(grants, uid)
			}
		})
		for _, u := range users {
			if err := fl.Request(u); err != nil {
				return false
			}
		}
		for range users {
			h, ok := fl.Holder()
			if !ok {
				return false
			}
			if err := fl.Release(h); err != nil {
				return false
			}
		}
		if len(grants) != len(users) {
			return false
		}
		for i := range users {
			if grants[i] != users[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
