package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(1000, 0)
	pkts := [][]byte{[]byte("one"), {}, []byte("three")}
	offsets := []time.Duration{0, 15 * time.Millisecond, 2 * time.Second}
	for i, pkt := range pkts {
		if err := w.Record(start.Add(offsets[i]), pkt); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, rec := range recs {
		if rec.Offset != offsets[i] {
			t.Errorf("record %d offset = %v, want %v", i, rec.Offset, offsets[i])
		}
		if !bytes.Equal(rec.Packet, pkts[i]) {
			t.Errorf("record %d packet = %q", i, rec.Packet)
		}
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("WRONGMAGIC"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("empty err = %v", err)
	}
	// Truncated record.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Record(time.Now(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated err = %v", err)
	}
	// Oversized packet rejected on write.
	if err := w.Record(time.Now(), make([]byte, MaxPacket+1)); err == nil {
		t.Error("oversized record should fail")
	}
}

func TestNegativeOffsetClamps(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(1000, 0)
	if err := w.Record(start, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// A clock hiccup delivers an earlier timestamp; offset clamps to 0.
	if err := w.Record(start.Add(-time.Second), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs[1].Offset != 0 {
		t.Fatalf("clamped offset = %v", recs[1].Offset)
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(payloads [][]byte, gaps []uint16) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		at := time.Unix(500, 0)
		for i, p := range payloads {
			if i < len(gaps) {
				at = at.Add(time.Duration(gaps[i]) * time.Microsecond)
			}
			if err := w.Record(at, p); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		recs, err := ReadAll(&buf)
		if err != nil || len(recs) != len(payloads) {
			return false
		}
		for i := range recs {
			if !bytes.Equal(recs[i].Packet, payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderStreaming(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Record(time.Unix(int64(i), 0), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		_, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 10 {
		t.Fatalf("streamed %d records", count)
	}
}
