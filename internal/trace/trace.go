// Package trace records and replays remoting sessions: every received
// RTP packet is written with its arrival offset, so a session can be
// re-rendered offline, bisected for protocol bugs, or replayed into
// benchmarks with the original timing.
//
// File format (all integers big-endian):
//
//	magic   "ADSTRACE1\n"
//	record  uint32 microseconds-since-start | uint32 length | bytes
//
// repeated until EOF.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Magic identifies a trace file.
const Magic = "ADSTRACE1\n"

// MaxPacket bounds one recorded packet (sanity check on read).
const MaxPacket = 1 << 20

// Errors.
var (
	ErrBadMagic  = errors.New("trace: bad magic")
	ErrTruncated = errors.New("trace: truncated record")
)

// Writer records packets. It is safe for concurrent use.
type Writer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	start time.Time
	began bool
}

// NewWriter returns a Writer recording onto w. The first recorded packet
// defines time zero.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Record appends one packet observed at the given instant.
func (t *Writer) Record(at time.Time, pkt []byte) error {
	if len(pkt) > MaxPacket {
		return fmt.Errorf("trace: packet %d exceeds %d", len(pkt), MaxPacket)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.began {
		t.start = at
		t.began = true
	}
	offset := at.Sub(t.start)
	if offset < 0 {
		offset = 0
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(offset/time.Microsecond))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(pkt)))
	if _, err := t.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := t.w.Write(pkt)
	return err
}

// Flush writes buffered records through to the underlying writer.
func (t *Writer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Flush()
}

// Record is one replayed packet.
type Record struct {
	// Offset is the packet's arrival time relative to the session start.
	Offset time.Duration
	// Packet is the raw RTP/RTCP packet.
	Packet []byte
}

// Reader replays a trace.
type Reader struct {
	r *bufio.Reader
}

// NewReader opens a trace stream, validating the magic.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, ErrBadMagic
	}
	if string(magic) != Magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next returns the next record, or io.EOF at a clean end.
func (r *Reader) Next() (Record, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, ErrTruncated
	}
	offset := time.Duration(binary.BigEndian.Uint32(hdr[0:])) * time.Microsecond
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > MaxPacket {
		return Record{}, fmt.Errorf("trace: record length %d exceeds %d", n, MaxPacket)
	}
	pkt := make([]byte, n)
	if _, err := io.ReadFull(r.r, pkt); err != nil {
		return Record{}, ErrTruncated
	}
	return Record{Offset: offset, Packet: pkt}, nil
}

// ReadAll replays the whole trace into memory.
func ReadAll(r io.Reader) ([]Record, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
