package trace

import (
	"fmt"
	"hash/fnv"
)

// Digest fingerprints a recorded trace: an FNV-64a over every record's
// offset and bytes, formatted as 16 hex digits. Two runs of a
// deterministic scenario must produce equal digests; a digest mismatch
// is the cheap first-line signal before diffing the journals record by
// record.
func Digest(records []Record) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, rec := range records {
		off := uint64(rec.Offset)
		for i := 0; i < 8; i++ {
			buf[i] = byte(off >> (56 - 8*i))
		}
		h.Write(buf[:])
		n := uint64(len(rec.Packet))
		for i := 0; i < 8; i++ {
			buf[i] = byte(n >> (56 - 8*i))
		}
		h.Write(buf[:])
		h.Write(rec.Packet)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
