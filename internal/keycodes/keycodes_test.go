package keycodes

import (
	"testing"
	"testing/quick"
)

func TestDraftExampleF1(t *testing.T) {
	// Draft Sections 6.6/6.7: "F1 key is defined as int VK_F1 = 0x70".
	if VKF1 != 0x70 {
		t.Fatalf("VKF1 = %#x, want 0x70", uint32(VKF1))
	}
	if VKF12 != 0x7B {
		t.Fatalf("VKF12 = %#x, want 0x7B", uint32(VKF12))
	}
	if VKF1.String() != "F1" || VKF12.String() != "F12" {
		t.Fatalf("names = %q/%q", VKF1.String(), VKF12.String())
	}
}

func TestJavaKeyEventValues(t *testing.T) {
	// Spot-check well-known KeyEvent.java constants.
	cases := []struct {
		code Code
		want uint32
		name string
	}{
		{VKEnter, 0x0A, "Enter"},
		{VKEscape, 0x1B, "Escape"},
		{VKSpace, 0x20, "Space"},
		{VKA, 0x41, "A"},
		{VKZ, 0x5A, "Z"},
		{VK0, 0x30, "0"},
		{VK9, 0x39, "9"},
		{VKNumpad0, 0x60, "Numpad0"},
		{VKDelete, 0x7F, "Delete"},
		{VKShift, 0x10, "Shift"},
		{VKLeft, 0x25, "Left"},
	}
	for _, c := range cases {
		if uint32(c.code) != c.want {
			t.Errorf("%s = %#x, want %#x", c.name, uint32(c.code), c.want)
		}
		if c.code.String() != c.name {
			t.Errorf("String(%#x) = %q, want %q", c.want, c.code.String(), c.name)
		}
	}
	if got := Code(0xFFFF).String(); got != "VK(0xFFFF)" {
		t.Errorf("unknown code String = %q", got)
	}
}

func TestFromRuneRoundtrip(t *testing.T) {
	for _, r := range "abcxyzABCXYZ0123456789 ,-./<_>?\n\t" {
		code, shift, ok := FromRune(r)
		if !ok {
			t.Errorf("FromRune(%q) not ok", r)
			continue
		}
		back, ok := code.Rune(shift)
		if !ok || back != r {
			t.Errorf("roundtrip %q -> %v(shift=%v) -> %q", r, code, shift, back)
		}
	}
}

func TestFromRuneUnmappable(t *testing.T) {
	for _, r := range "éλ€☺" {
		if _, _, ok := FromRune(r); ok {
			t.Errorf("FromRune(%q) should not map; KeyTyped carries it", r)
		}
	}
}

func TestQuickLetterCase(t *testing.T) {
	f := func(b byte) bool {
		r := rune('a' + b%26)
		code, shift, ok := FromRune(r)
		if !ok || shift {
			return false
		}
		upper, shiftU, okU := FromRune(r - 'a' + 'A')
		return okU && shiftU && upper == code
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsModifier(t *testing.T) {
	for _, c := range []Code{VKShift, VKControl, VKAlt, VKMeta} {
		if !c.IsModifier() {
			t.Errorf("%v should be a modifier", c)
		}
	}
	if VKA.IsModifier() || VKF1.IsModifier() {
		t.Error("letter/function keys are not modifiers")
	}
}
