// Package keycodes defines the Java virtual key codes used by the HIP
// KeyPressed and KeyReleased messages (draft Sections 6.6 and 6.7). The
// draft references the publicly available constants of the OpenJDK
// KeyEvent.java file; the values below reproduce that table for the keys
// a desktop-sharing participant can generate. For example the draft's own
// example, "F1 key is defined as int VK_F1 = 0x70", appears as VKF1.
package keycodes

import "fmt"

// Code is a 32-bit Java virtual key code as carried on the wire.
type Code uint32

// Control and whitespace keys.
const (
	VKEnter     Code = 0x0A
	VKBackspace Code = 0x08
	VKTab       Code = 0x09
	VKCancel    Code = 0x03
	VKClear     Code = 0x0C
	VKShift     Code = 0x10
	VKControl   Code = 0x11
	VKAlt       Code = 0x12
	VKPause     Code = 0x13
	VKCapsLock  Code = 0x14
	VKEscape    Code = 0x1B
	VKSpace     Code = 0x20
	VKPageUp    Code = 0x21
	VKPageDown  Code = 0x22
	VKEnd       Code = 0x23
	VKHome      Code = 0x24
	VKLeft      Code = 0x25
	VKUp        Code = 0x26
	VKRight     Code = 0x27
	VKDown      Code = 0x28
	VKComma     Code = 0x2C
	VKMinus     Code = 0x2D
	VKPeriod    Code = 0x2E
	VKSlash     Code = 0x2F
	VKDelete    Code = 0x7F
	VKInsert    Code = 0x9B
	VKWindows   Code = 0x020C
	VKMeta      Code = 0x9D
)

// Digit keys VK_0..VK_9 equal the ASCII codes '0'..'9'.
const (
	VK0 Code = 0x30 + iota
	VK1
	VK2
	VK3
	VK4
	VK5
	VK6
	VK7
	VK8
	VK9
)

// Letter keys VK_A..VK_Z equal the ASCII codes 'A'..'Z'.
const (
	VKA Code = 0x41 + iota
	VKB
	VKC
	VKD
	VKE
	VKF
	VKG
	VKH
	VKI
	VKJ
	VKK
	VKL
	VKM
	VKN
	VKO
	VKP
	VKQ
	VKR
	VKS
	VKT
	VKU
	VKV
	VKW
	VKX
	VKY
	VKZ
)

// Numpad keys VK_NUMPAD0..VK_NUMPAD9.
const (
	VKNumpad0 Code = 0x60 + iota
	VKNumpad1
	VKNumpad2
	VKNumpad3
	VKNumpad4
	VKNumpad5
	VKNumpad6
	VKNumpad7
	VKNumpad8
	VKNumpad9
)

// Function keys VK_F1..VK_F12. VK_F1 = 0x70 per the draft's example.
const (
	VKF1 Code = 0x70 + iota
	VKF2
	VKF3
	VKF4
	VKF5
	VKF6
	VKF7
	VKF8
	VKF9
	VKF10
	VKF11
	VKF12
)

var names = map[Code]string{
	VKEnter: "Enter", VKBackspace: "Backspace", VKTab: "Tab",
	VKCancel: "Cancel", VKClear: "Clear", VKShift: "Shift",
	VKControl: "Control", VKAlt: "Alt", VKPause: "Pause",
	VKCapsLock: "CapsLock", VKEscape: "Escape", VKSpace: "Space",
	VKPageUp: "PageUp", VKPageDown: "PageDown", VKEnd: "End",
	VKHome: "Home", VKLeft: "Left", VKUp: "Up", VKRight: "Right",
	VKDown: "Down", VKComma: "Comma", VKMinus: "Minus",
	VKPeriod: "Period", VKSlash: "Slash", VKDelete: "Delete",
	VKInsert: "Insert", VKWindows: "Windows", VKMeta: "Meta",
}

// String returns a readable name for the key code.
func (c Code) String() string {
	if n, ok := names[c]; ok {
		return n
	}
	switch {
	case c >= VK0 && c <= VK9:
		return string(rune('0' + c - VK0))
	case c >= VKA && c <= VKZ:
		return string(rune('A' + c - VKA))
	case c >= VKNumpad0 && c <= VKNumpad9:
		return fmt.Sprintf("Numpad%d", c-VKNumpad0)
	case c >= VKF1 && c <= VKF12:
		return fmt.Sprintf("F%d", c-VKF1+1)
	default:
		return fmt.Sprintf("VK(0x%X)", uint32(c))
	}
}

// FromRune maps a character to the virtual key that produces it on a US
// keyboard, with a shift requirement. Characters with no direct key
// mapping (beyond the supported set) return ok=false; such characters are
// better carried by a KeyTyped message, which injects UTF-8 text directly.
func FromRune(r rune) (code Code, shift bool, ok bool) {
	switch {
	case r >= 'a' && r <= 'z':
		return VKA + Code(r-'a'), false, true
	case r >= 'A' && r <= 'Z':
		return VKA + Code(r-'A'), true, true
	case r >= '0' && r <= '9':
		return VK0 + Code(r-'0'), false, true
	}
	switch r {
	case ' ':
		return VKSpace, false, true
	case '\n':
		return VKEnter, false, true
	case '\t':
		return VKTab, false, true
	case ',':
		return VKComma, false, true
	case '-':
		return VKMinus, false, true
	case '.':
		return VKPeriod, false, true
	case '/':
		return VKSlash, false, true
	case '<':
		return VKComma, true, true
	case '_':
		return VKMinus, true, true
	case '>':
		return VKPeriod, true, true
	case '?':
		return VKSlash, true, true
	}
	return 0, false, false
}

// Rune maps a virtual key (plus shift state) back to the character it
// produces on a US keyboard, or ok=false for non-character keys.
func (c Code) Rune(shift bool) (rune, bool) {
	switch {
	case c >= VKA && c <= VKZ:
		if shift {
			return 'A' + rune(c-VKA), true
		}
		return 'a' + rune(c-VKA), true
	case c >= VK0 && c <= VK9 && !shift:
		return '0' + rune(c-VK0), true
	case c >= VKNumpad0 && c <= VKNumpad9:
		return '0' + rune(c-VKNumpad0), true
	}
	type pair struct{ plain, shifted rune }
	m := map[Code]pair{
		VKSpace:  {' ', ' '},
		VKEnter:  {'\n', '\n'},
		VKTab:    {'\t', '\t'},
		VKComma:  {',', '<'},
		VKMinus:  {'-', '_'},
		VKPeriod: {'.', '>'},
		VKSlash:  {'/', '?'},
	}
	if p, ok := m[c]; ok {
		if shift {
			return p.shifted, true
		}
		return p.plain, true
	}
	return 0, false
}

// IsModifier reports whether the key is a modifier (shift/control/alt/meta).
func (c Code) IsModifier() bool {
	switch c {
	case VKShift, VKControl, VKAlt, VKMeta, VKWindows:
		return true
	}
	return false
}
