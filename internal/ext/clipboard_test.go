package ext_test

import (
	"image/color"
	"testing"
	"time"

	"appshare/internal/ah"
	"appshare/internal/core"
	"appshare/internal/display"
	"appshare/internal/ext"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/transport"
)

func TestClipboardRoundtrip(t *testing.T) {
	in := &ext.Clipboard{Seq: 7, Text: "copiéd text"}
	buf, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	hdr, body, err := core.ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Type != ext.TypeClipboardUpdate {
		t.Fatalf("type = %v", hdr.Type)
	}
	out, err := ext.Decode(hdr, body)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("roundtrip = %+v, want %+v", out, in)
	}
}

func TestClipboardValidation(t *testing.T) {
	if _, err := (&ext.Clipboard{Text: string([]byte{0xFF})}).Marshal(); err == nil {
		t.Error("invalid UTF-8 should fail")
	}
	big := make([]byte, ext.MaxClipboardBytes+1)
	for i := range big {
		big[i] = 'a'
	}
	if _, err := (&ext.Clipboard{Text: string(big)}).Marshal(); err == nil {
		t.Error("oversized clipboard should fail")
	}
	if _, err := ext.Decode(core.Header{Type: 1}, nil); err == nil {
		t.Error("wrong type should fail")
	}
	if _, err := ext.Decode(core.Header{Type: ext.TypeClipboardUpdate}, []byte{0xFE}); err == nil {
		t.Error("invalid body should fail")
	}
}

// TestClipboardEndToEnd broadcasts the extension through a live host:
// an extension-aware participant receives the text; a vanilla
// participant ignores the message and its stream stays healthy — the
// Section 5.1.2 MAY-ignore behavior.
func TestClipboardEndToEnd(t *testing.T) {
	desk := display.NewDesktop(640, 480)
	win := desk.CreateWindow(1, region.XYWH(10, 10, 200, 150))
	host, err := ah.New(ah.Config{Desktop: desk})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	attach := func() (*participant.Participant, transport.PacketConn) {
		hostSide, partSide := transport.Pipe(transport.LinkConfig{Seed: 1}, transport.LinkConfig{Seed: 2})
		p := participant.New(participant.Config{})
		go func() {
			for {
				pkt, err := partSide.Recv()
				if err != nil {
					return
				}
				_ = p.HandlePacket(pkt)
			}
		}()
		if _, err := host.AttachPacketConn("p", hostSide, ah.PacketOptions{}); err != nil {
			t.Fatal(err)
		}
		return p, partSide
	}
	aware, awareConn := attach()
	vanilla, vanillaConn := attach()

	var got string
	aware.OnExtension(ext.TypeClipboardUpdate, func(hdr core.Header, body []byte) {
		if cb, err := ext.Decode(hdr, body); err == nil {
			got = cb.Text
		}
	})

	// Join both.
	for _, pc := range []struct {
		p *participant.Participant
		c transport.PacketConn
	}{{aware, awareConn}, {vanilla, vanillaConn}} {
		pli, err := pc.p.BuildPLI()
		if err != nil {
			t.Fatal(err)
		}
		if err := pc.c.Send(pli); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)

	cb, err := (&ext.Clipboard{Seq: 1, Text: "shared snippet"}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := host.BroadcastExtension(cb); err != nil {
		t.Fatal(err)
	}
	// Ordinary traffic after the extension proves the stream survived.
	win.Fill(region.XYWH(0, 0, 50, 50), redColor())
	if err := host.Tick(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	if got != "shared snippet" {
		t.Fatalf("aware participant got %q", got)
	}
	if vanilla.IgnoredExtensions() != 1 {
		t.Fatalf("vanilla ignored = %d, want 1", vanilla.IgnoredExtensions())
	}
	if vanilla.NeedsRefresh() {
		t.Fatal("ignoring an extension must not desynchronize the stream")
	}
	// Both participants still apply normal updates after the extension.
	for name, p := range map[string]*participant.Participant{"aware": aware, "vanilla": vanilla} {
		img := p.WindowImage(win.ID())
		if img == nil || img.RGBAAt(5, 5) != redColor() {
			t.Fatalf("%s participant missed the post-extension update", name)
		}
	}

	// Oversized and undersized broadcasts are rejected.
	if err := host.BroadcastExtension([]byte{1, 2}); err == nil {
		t.Error("short payload should fail")
	}
	if err := host.BroadcastExtension(make([]byte, 64<<10)); err == nil {
		t.Error("oversized payload should fail")
	}
}

func redColor() color.RGBA {
	return color.RGBA{R: 0xFF, A: 0xFF}
}
