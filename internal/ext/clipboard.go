// Package ext implements a vendor extension to the application-sharing
// protocol: clipboard transfer, the copy-and-paste enhancement the draft
// names but deliberately leaves undefined (Section 4.2: "it is often
// useful to allow copy-and-paste between applications running on a
// participant and those running on an AH. This document does not define
// any such extensions").
//
// The extension follows the draft's own extensibility rules: a new
// remoting message type registered per Section 9 ("Specification
// Required"); participants without the extension MAY ignore it (Section
// 5.1.2), which internal/participant implements by counting and skipping
// unknown types.
package ext

import (
	"errors"
	"fmt"
	"unicode/utf8"

	"appshare/internal/core"
	"appshare/internal/wire"
)

// TypeClipboardUpdate is the extension remoting message type: the AH's
// clipboard content changed. Value 5 is the first free value after
// Table 1.
const TypeClipboardUpdate core.MessageType = 5

// MaxClipboardBytes bounds one clipboard message (it must fit a single
// RTP packet; fragmentation is only defined for RegionUpdate and
// MousePointerInfo).
const MaxClipboardBytes = 1100

// Clipboard is the ClipboardUpdate extension message: UTF-8 text. The
// Parameter field carries a 8-bit sequence number so late/duplicate
// deliveries are detectable.
type Clipboard struct {
	Seq  uint8
	Text string
}

// Marshal encodes the message as a remoting-stream payload (common
// header + UTF-8 body).
func (c *Clipboard) Marshal() ([]byte, error) {
	if !utf8.ValidString(c.Text) {
		return nil, errors.New("ext: clipboard text is not valid UTF-8")
	}
	if len(c.Text) > MaxClipboardBytes {
		return nil, fmt.Errorf("ext: clipboard text %d bytes exceeds %d", len(c.Text), MaxClipboardBytes)
	}
	w := wire.NewWriter(core.HeaderSize + len(c.Text))
	core.Header{Type: TypeClipboardUpdate, Parameter: c.Seq}.AppendTo(w)
	w.Write([]byte(c.Text))
	return w.Bytes(), nil
}

// Decode parses a ClipboardUpdate from a common header and body (as a
// participant extension handler receives them).
func Decode(hdr core.Header, body []byte) (*Clipboard, error) {
	if hdr.Type != TypeClipboardUpdate {
		return nil, fmt.Errorf("ext: message type %v is not ClipboardUpdate", hdr.Type)
	}
	if !utf8.Valid(body) {
		return nil, errors.New("ext: clipboard body is not valid UTF-8")
	}
	return &Clipboard{Seq: hdr.Parameter, Text: string(body)}, nil
}
