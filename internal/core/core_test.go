package core

import (
	"testing"

	"appshare/internal/wire"
)

// TestCommonHeaderLayout verifies the Figure 7 byte layout (experiment E01).
func TestCommonHeaderLayout(t *testing.T) {
	w := wire.NewWriter(4)
	Header{Type: TypeRegionUpdate, Parameter: 0x85, WindowID: 0x0102}.AppendTo(w)
	got := w.Bytes()
	want := []byte{2, 0x85, 0x01, 0x02}
	if string(got) != string(want) {
		t.Fatalf("header bytes = %v, want %v", got, want)
	}

	h, rest, err := ParseHeader(append(got, 0xAA, 0xBB))
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeRegionUpdate || h.Parameter != 0x85 || h.WindowID != 0x0102 {
		t.Fatalf("parsed header = %+v", h)
	}
	if len(rest) != 2 || rest[0] != 0xAA {
		t.Fatalf("rest = %v", rest)
	}
}

func TestParseHeaderShort(t *testing.T) {
	if _, _, err := ParseHeader([]byte{1, 2, 3}); err != ErrShortHeader {
		t.Fatalf("err = %v, want ErrShortHeader", err)
	}
}

// TestIANARegistries verifies Tables 1, 3, 4 and 5 (experiment E13).
func TestIANARegistries(t *testing.T) {
	wantRemoting := map[MessageType]string{
		1: "WindowManagerInfo",
		2: "RegionUpdate",
		3: "MoveRectangle",
		4: "MousePointerInfo",
	}
	for v, name := range wantRemoting {
		if RemotingRegistry[v] != name {
			t.Errorf("remoting registry[%d] = %q, want %q", v, RemotingRegistry[v], name)
		}
		if !v.IsRemoting() || v.IsHIP() {
			t.Errorf("type %d classification wrong", v)
		}
		if v.String() != name {
			t.Errorf("String(%d) = %q, want %q", v, v.String(), name)
		}
	}
	wantHIP := map[MessageType]string{
		121: "MousePressed",
		122: "MouseReleased",
		123: "MouseMoved",
		124: "MouseWheelMoved",
		125: "KeyPressed",
		126: "KeyReleased",
		127: "KeyTyped",
	}
	for v, name := range wantHIP {
		if HIPRegistry[v] != name {
			t.Errorf("HIP registry[%d] = %q, want %q", v, HIPRegistry[v], name)
		}
		if !v.IsHIP() || v.IsRemoting() {
			t.Errorf("type %d classification wrong", v)
		}
	}
	if len(RemotingRegistry) != 4 || len(HIPRegistry) != 7 {
		t.Errorf("registry sizes = %d/%d, want 4/7", len(RemotingRegistry), len(HIPRegistry))
	}
	if got := MessageType(99).String(); got != "MessageType(99)" {
		t.Errorf("unknown type String = %q", got)
	}
}

func TestUpdateParamPacking(t *testing.T) {
	p, err := PackUpdateParam(true, 99)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0x80|99 {
		t.Fatalf("param = %#x", p)
	}
	first, pt := UnpackUpdateParam(p)
	if !first || pt != 99 {
		t.Fatalf("unpack = %v, %d", first, pt)
	}
	if _, err := PackUpdateParam(false, 0x80); err == nil {
		t.Fatal("PT > 127 should fail")
	}
}

// TestFragmentationTable2 checks the marker × FirstPacket encoding against
// every row of Table 2 (experiment E03).
func TestFragmentationTable2(t *testing.T) {
	cases := []struct {
		marker, first bool
		want          FragmentPosition
	}{
		{true, true, NotFragmented},
		{false, true, StartFragment},
		{false, false, ContinuationFragment},
		{true, false, EndFragment},
	}
	for _, c := range cases {
		if got := Position(c.marker, c.first); got != c.want {
			t.Errorf("Position(%v, %v) = %v, want %v", c.marker, c.first, got, c.want)
		}
		m, f := c.want.Bits()
		if m != c.marker || f != c.first {
			t.Errorf("%v.Bits() = %v, %v, want %v, %v", c.want, m, f, c.marker, c.first)
		}
	}
	for _, p := range []FragmentPosition{NotFragmented, StartFragment, ContinuationFragment, EndFragment} {
		if p.String() == "" {
			t.Errorf("empty String for %d", p)
		}
	}
}
