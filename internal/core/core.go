// Package core implements the heart of draft-boyaci-avt-app-sharing-00:
// the common remoting/HIP header that follows the RTP header in every
// message (Figure 7), the remoting and HIP message-type registries
// (Tables 1 and 3, mirrored by the IANA registries of Tables 4 and 5),
// and the RegionUpdate fragmentation rules (Table 2).
//
// Layering (Figure 6):
//
//	+----------------------------------+
//	|            RTP header            |  internal/rtp
//	+----------------------------------+
//	|    Common remoting/HIP header    |  this package
//	+----------------------------------+
//	|    Message-type specific header  |  internal/remoting, internal/hip
//	+----------------------------------+
//	|     Message specific payload     |
//	+----------------------------------+
package core

import (
	"errors"
	"fmt"

	"appshare/internal/wire"
)

// MessageType identifies a remoting or HIP message (8-bit "Msg Type" field
// of the common header).
type MessageType uint8

// Remoting protocol message types (Table 1 / Table 4).
const (
	TypeWindowManagerInfo MessageType = 1
	TypeRegionUpdate      MessageType = 2
	TypeMoveRectangle     MessageType = 3
	TypeMousePointerInfo  MessageType = 4
)

// Extension remoting message types (Section 9: additional types may be
// registered with IANA under "Specification Required"; participants MAY
// ignore types they do not implement). TileReference is this
// implementation's negotiated tile-store extension: it repaints a region
// from content-hash tile references instead of re-shipping pixels (see
// internal/remoting and DESIGN.md "Tile store"). It is only sent to
// participants that negotiated the "tilestore" fmtp capability.
// RelaySubscribe and StreamDescriptor are the relay-cascade control
// handshake (DESIGN.md "Relay cascade"): a relay announces itself and
// the stream it wants with RelaySubscribe (RequestForward-style), and
// the origin answers with the stream's endpoint descriptor. Both are
// only exchanged with peers that negotiated the "relay" fmtp
// capability.
// BrokerRegister, BrokerHeartbeat and BrokerMigrate are the session
// broker's control plane (DESIGN.md "Session broker & migration"): a
// host announces itself with BrokerRegister, reports its load every
// tick with BrokerHeartbeat, and the broker orders a session re-homed
// with BrokerMigrate. They are exchanged only on host↔broker control
// links, never with participants.
const (
	TypeTileReference    MessageType = 16
	TypeRelaySubscribe   MessageType = 17
	TypeStreamDescriptor MessageType = 18
	TypeBrokerRegister   MessageType = 19
	TypeBrokerHeartbeat  MessageType = 20
	TypeBrokerMigrate    MessageType = 21
)

// HIP message types (Table 3 / Table 5).
const (
	TypeMousePressed    MessageType = 121
	TypeMouseReleased   MessageType = 122
	TypeMouseMoved      MessageType = 123
	TypeMouseWheelMoved MessageType = 124
	TypeKeyPressed      MessageType = 125
	TypeKeyReleased     MessageType = 126
	TypeKeyTyped        MessageType = 127
)

var typeNames = map[MessageType]string{
	TypeWindowManagerInfo: "WindowManagerInfo",
	TypeRegionUpdate:      "RegionUpdate",
	TypeMoveRectangle:     "MoveRectangle",
	TypeMousePointerInfo:  "MousePointerInfo",
	TypeTileReference:     "TileReference",
	TypeRelaySubscribe:    "RelaySubscribe",
	TypeStreamDescriptor:  "StreamDescriptor",
	TypeBrokerRegister:    "BrokerRegister",
	TypeBrokerHeartbeat:   "BrokerHeartbeat",
	TypeBrokerMigrate:     "BrokerMigrate",
	TypeMousePressed:      "MousePressed",
	TypeMouseReleased:     "MouseReleased",
	TypeMouseMoved:        "MouseMoved",
	TypeMouseWheelMoved:   "MouseWheelMoved",
	TypeKeyPressed:        "KeyPressed",
	TypeKeyReleased:       "KeyReleased",
	TypeKeyTyped:          "KeyTyped",
}

// String implements fmt.Stringer.
func (t MessageType) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("MessageType(%d)", uint8(t))
}

// IsRemoting reports whether t is a registered remoting (AH→participant)
// message type.
func (t MessageType) IsRemoting() bool {
	return t >= TypeWindowManagerInfo && t <= TypeMousePointerInfo
}

// IsHIP reports whether t is a registered HIP (participant→AH) message
// type.
func (t MessageType) IsHIP() bool {
	return t >= TypeMousePressed && t <= TypeKeyTyped
}

// RemotingRegistry and HIPRegistry mirror the IANA subregistries
// established in Section 9 (Tables 4 and 5). Registration policy is
// "Specification Required"; participants MAY ignore unregistered types.
var (
	RemotingRegistry = map[MessageType]string{
		TypeWindowManagerInfo: "WindowManagerInfo",
		TypeRegionUpdate:      "RegionUpdate",
		TypeMoveRectangle:     "MoveRectangle",
		TypeMousePointerInfo:  "MousePointerInfo",
	}
	// ExtensionRegistry lists the extension remoting types this
	// implementation registers per Section 9. They sit outside Table 1,
	// so IsRemoting stays false for them: un-negotiated participants
	// route them through the extension-ignore path instead of erroring.
	ExtensionRegistry = map[MessageType]string{
		TypeTileReference:    "TileReference",
		TypeRelaySubscribe:   "RelaySubscribe",
		TypeStreamDescriptor: "StreamDescriptor",
		TypeBrokerRegister:   "BrokerRegister",
		TypeBrokerHeartbeat:  "BrokerHeartbeat",
		TypeBrokerMigrate:    "BrokerMigrate",
	}
	HIPRegistry = map[MessageType]string{
		TypeMousePressed:    "MousePressed",
		TypeMouseReleased:   "MouseReleased",
		TypeMouseMoved:      "MouseMoved",
		TypeMouseWheelMoved: "MouseWheelMoved",
		TypeKeyPressed:      "KeyPressed",
		TypeKeyReleased:     "KeyReleased",
		TypeKeyTyped:        "KeyTyped",
	}
)

// HeaderSize is the size of the common remoting/HIP header in bytes.
const HeaderSize = 4

// ErrShortHeader is returned when a payload is shorter than the common
// header.
var ErrShortHeader = errors.New("core: payload shorter than common header")

// Header is the common remoting/HIP header (Figure 7):
//
//	 0                   1                   2                   3
//	 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	|  Msg Type     |    Parameter  |          WindowID             |
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//
// Parameter is message-specific: for RegionUpdate and MousePointerInfo it
// packs the FirstPacket bit and payload type (Figure 10); for mouse
// button messages it carries the button number; elsewhere it is zero.
type Header struct {
	Type      MessageType
	Parameter uint8
	WindowID  uint16
}

// AppendTo appends the 4-byte header to w.
func (h Header) AppendTo(w *wire.Writer) {
	w.Uint8(uint8(h.Type))
	w.Uint8(h.Parameter)
	w.Uint16(h.WindowID)
}

// ParseHeader splits payload into its common header and the remainder.
func ParseHeader(payload []byte) (Header, []byte, error) {
	if len(payload) < HeaderSize {
		return Header{}, nil, ErrShortHeader
	}
	h := Header{
		Type:      MessageType(payload[0]),
		Parameter: payload[1],
		WindowID:  uint16(payload[2])<<8 | uint16(payload[3]),
	}
	return h, payload[HeaderSize:], nil
}

// RegionUpdate/MousePointerInfo parameter packing (Figure 10): the top bit
// is the FirstPacket flag, the low 7 bits the RTP payload type of the
// encoded content.

// PackUpdateParam packs the FirstPacket bit and content payload type.
func PackUpdateParam(firstPacket bool, contentPT uint8) (uint8, error) {
	if contentPT > 0x7F {
		return 0, fmt.Errorf("core: content payload type %d exceeds 7 bits", contentPT)
	}
	p := contentPT
	if firstPacket {
		p |= 0x80
	}
	return p, nil
}

// UnpackUpdateParam splits a RegionUpdate/MousePointerInfo parameter into
// its FirstPacket bit and content payload type.
func UnpackUpdateParam(param uint8) (firstPacket bool, contentPT uint8) {
	return param&0x80 != 0, param & 0x7F
}

// FragmentPosition classifies a packet within a (possibly) multi-packet
// message, from the RTP marker bit and the FirstPacket bit (Table 2).
type FragmentPosition uint8

// Fragment positions per Table 2.
const (
	NotFragmented        FragmentPosition = iota // marker=1, first=1
	StartFragment                                // marker=0, first=1
	ContinuationFragment                         // marker=0, first=0
	EndFragment                                  // marker=1, first=0
)

// String implements fmt.Stringer.
func (p FragmentPosition) String() string {
	switch p {
	case NotFragmented:
		return "NotFragmented"
	case StartFragment:
		return "StartFragment"
	case ContinuationFragment:
		return "ContinuationFragment"
	case EndFragment:
		return "EndFragment"
	default:
		return fmt.Sprintf("FragmentPosition(%d)", uint8(p))
	}
}

// Position computes the fragment position from the two bits (Table 2).
func Position(marker, firstPacket bool) FragmentPosition {
	switch {
	case marker && firstPacket:
		return NotFragmented
	case !marker && firstPacket:
		return StartFragment
	case !marker && !firstPacket:
		return ContinuationFragment
	default:
		return EndFragment
	}
}

// Bits returns the (marker, firstPacket) encoding of the position,
// inverting Position.
func (p FragmentPosition) Bits() (marker, firstPacket bool) {
	switch p {
	case NotFragmented:
		return true, true
	case StartFragment:
		return false, true
	case ContinuationFragment:
		return false, false
	default: // EndFragment
		return true, false
	}
}
