package core

import (
	"errors"
	"fmt"

	"appshare/internal/wire"
)

// Fragmentation (draft Section 5.2.2, Table 2). A RegionUpdate (or
// MousePointerInfo, which shares the format) whose content exceeds one RTP
// packet is carried in several payloads. Every payload carries the 4-byte
// common header; the message-type specific header (left, top) is carried
// only in the first payload. The RTP marker bit and the FirstPacket bit of
// the parameter field together encode the fragment position.

// Fragment is one RTP payload of a (possibly multi-packet) message, plus
// the marker bit the RTP header must carry.
type Fragment struct {
	Payload []byte // common header + (first: msg header) + content piece
	Marker  bool
}

// Fragmentation errors.
var (
	ErrMTUTooSmall      = errors.New("core: MTU too small for header and one content byte")
	ErrOrphanFragment   = errors.New("core: continuation fragment without a start")
	ErrInterruptedReass = errors.New("core: new message interrupted an in-progress one")
)

// FragmentMessage splits a fragmentable message (RegionUpdate or
// MousePointerInfo) into RTP payloads of at most mtu bytes. msgHeader is
// the message-type specific header (left/top), carried only in the first
// payload. contentPT is the RTP payload type of the encoded content,
// packed into the parameter field with the FirstPacket bit (Figure 10).
func FragmentMessage(typ MessageType, windowID uint16, contentPT uint8, msgHeader, content []byte, mtu int) ([]Fragment, error) {
	if typ != TypeRegionUpdate && typ != TypeMousePointerInfo {
		return nil, fmt.Errorf("core: message type %v is not fragmentable", typ)
	}
	if mtu < HeaderSize+len(msgHeader)+1 {
		return nil, fmt.Errorf("%w: mtu=%d", ErrMTUTooSmall, mtu)
	}

	build := func(first bool, extra, piece []byte) ([]byte, error) {
		param, err := PackUpdateParam(first, contentPT)
		if err != nil {
			return nil, err
		}
		w := wire.NewWriter(HeaderSize + len(extra) + len(piece))
		Header{Type: typ, Parameter: param, WindowID: windowID}.AppendTo(w)
		w.Write(extra)
		w.Write(piece)
		return w.Bytes(), nil
	}

	firstRoom := mtu - HeaderSize - len(msgHeader)
	if len(content) <= firstRoom {
		// Not fragmented: marker=1, FirstPacket=1 (Table 2 row 1).
		p, err := build(true, msgHeader, content)
		if err != nil {
			return nil, err
		}
		return []Fragment{{Payload: p, Marker: true}}, nil
	}

	var frags []Fragment
	p, err := build(true, msgHeader, content[:firstRoom])
	if err != nil {
		return nil, err
	}
	frags = append(frags, Fragment{Payload: p, Marker: false}) // Start
	rest := content[firstRoom:]
	room := mtu - HeaderSize
	for len(rest) > 0 {
		n := min(room, len(rest))
		p, err := build(false, nil, rest[:n])
		if err != nil {
			return nil, err
		}
		rest = rest[n:]
		frags = append(frags, Fragment{Payload: p, Marker: len(rest) == 0})
	}
	return frags, nil
}

// Message is a fully reassembled remoting or HIP message.
type Message struct {
	Header Header // common header of the first packet (FirstPacket bit set)
	Body   []byte // msg-specific header + content, concatenated
}

// Reassembler reconstructs messages from an in-order RTP payload stream
// (the rtp.Receiver provides ordering). Fragmentable types are accumulated
// across packets per Table 2; every other type is one packet per message.
//
// Reassembler is not safe for concurrent use.
type Reassembler struct {
	inProgress bool
	hdr        Header
	body       []byte
	dropped    uint64
}

// NewReassembler returns an empty Reassembler.
func NewReassembler() *Reassembler { return &Reassembler{} }

// Dropped reports how many partially received messages were abandoned.
func (ra *Reassembler) Dropped() uint64 { return ra.dropped }

// Push consumes one RTP payload (with its marker bit) and returns a
// complete message if this payload finishes one, or nil. A continuation
// with no start in progress returns ErrOrphanFragment (typically after
// loss; the caller may NACK or PLI). A fresh start while another message
// is in progress abandons the old message and returns
// ErrInterruptedReass alongside nil; the new fragment is still consumed.
func (ra *Reassembler) Push(payload []byte, marker bool) (*Message, error) {
	hdr, rest, err := ParseHeader(payload)
	if err != nil {
		return nil, err
	}
	if hdr.Type != TypeRegionUpdate && hdr.Type != TypeMousePointerInfo {
		// Non-fragmentable: complete in a single packet.
		return &Message{Header: hdr, Body: rest}, nil
	}

	first, _ := UnpackUpdateParam(hdr.Parameter)
	var interrupted error
	if first && ra.inProgress {
		ra.reset()
		ra.dropped++
		interrupted = ErrInterruptedReass
	}

	switch Position(marker, first) {
	case NotFragmented:
		return &Message{Header: hdr, Body: rest}, interrupted
	case StartFragment:
		ra.inProgress = true
		ra.hdr = hdr
		ra.body = append(ra.body[:0], rest...)
		return nil, interrupted
	case ContinuationFragment, EndFragment:
		if !ra.inProgress {
			ra.dropped++
			return nil, ErrOrphanFragment
		}
		if hdr.Type != ra.hdr.Type || hdr.WindowID != ra.hdr.WindowID {
			ra.reset()
			ra.dropped++
			return nil, fmt.Errorf("core: fragment header mismatch: %v/%d then %v/%d",
				ra.hdr.Type, ra.hdr.WindowID, hdr.Type, hdr.WindowID)
		}
		ra.body = append(ra.body, rest...)
		if Position(marker, first) == EndFragment {
			msg := &Message{Header: ra.hdr, Body: append([]byte(nil), ra.body...)}
			ra.reset()
			return msg, nil
		}
		return nil, nil
	}
	return nil, nil // unreachable
}

// Abort abandons any in-progress message (used after a PLI-triggered
// stream reset).
func (ra *Reassembler) Abort() {
	if ra.inProgress {
		ra.dropped++
	}
	ra.reset()
}

func (ra *Reassembler) reset() {
	ra.inProgress = false
	ra.hdr = Header{}
	ra.body = ra.body[:0]
}
