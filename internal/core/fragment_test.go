package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func mkContent(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestFragmentSinglePacket(t *testing.T) {
	msgHdr := []byte{0, 0, 0, 10, 0, 0, 0, 20} // left=10, top=20
	content := mkContent(100)
	frags, err := FragmentMessage(TypeRegionUpdate, 7, 99, msgHdr, content, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 {
		t.Fatalf("fragments = %d, want 1", len(frags))
	}
	f := frags[0]
	if !f.Marker {
		t.Error("single-packet message must set marker")
	}
	hdr, rest, err := ParseHeader(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	first, pt := UnpackUpdateParam(hdr.Parameter)
	if !first || pt != 99 {
		t.Fatalf("param = first:%v pt:%d", first, pt)
	}
	if hdr.WindowID != 7 {
		t.Fatalf("windowID = %d", hdr.WindowID)
	}
	if !bytes.Equal(rest[:8], msgHdr) || !bytes.Equal(rest[8:], content) {
		t.Fatal("payload layout wrong")
	}
}

func TestFragmentMultiPacket(t *testing.T) {
	msgHdr := mkContent(8)
	content := mkContent(5000)
	const mtu = 1400
	frags, err := FragmentMessage(TypeRegionUpdate, 3, 96, msgHdr, content, mtu)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 4 {
		t.Fatalf("fragments = %d, want >= 4", len(frags))
	}
	for i, f := range frags {
		if len(f.Payload) > mtu {
			t.Fatalf("fragment %d exceeds MTU: %d", i, len(f.Payload))
		}
		hdr, _, err := ParseHeader(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		first, _ := UnpackUpdateParam(hdr.Parameter)
		pos := Position(f.Marker, first)
		switch {
		case i == 0 && pos != StartFragment:
			t.Fatalf("fragment 0 position = %v", pos)
		case i == len(frags)-1 && pos != EndFragment:
			t.Fatalf("last fragment position = %v", pos)
		case i > 0 && i < len(frags)-1 && pos != ContinuationFragment:
			t.Fatalf("fragment %d position = %v", i, pos)
		}
	}
	// Left/top (msg header) must appear only in the first payload: all
	// continuation payloads are common header + content only.
	if len(frags[1].Payload) != HeaderSize+(mtu-HeaderSize) {
		t.Fatalf("continuation size = %d", len(frags[1].Payload))
	}
}

func TestFragmentErrors(t *testing.T) {
	if _, err := FragmentMessage(TypeWindowManagerInfo, 0, 0, nil, mkContent(10), 1400); err == nil {
		t.Error("WindowManagerInfo is not fragmentable")
	}
	if _, err := FragmentMessage(TypeRegionUpdate, 0, 96, mkContent(8), mkContent(10), 10); !errors.Is(err, ErrMTUTooSmall) {
		t.Errorf("tiny MTU err = %v", err)
	}
	if _, err := FragmentMessage(TypeRegionUpdate, 0, 200, mkContent(8), mkContent(10), 1400); err == nil {
		t.Error("8-bit content PT should fail")
	}
}

func pushAll(t *testing.T, ra *Reassembler, frags []Fragment) *Message {
	t.Helper()
	var out *Message
	for i, f := range frags {
		msg, err := ra.Push(f.Payload, f.Marker)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if msg != nil {
			if i != len(frags)-1 {
				t.Fatalf("message completed early at fragment %d", i)
			}
			out = msg
		}
	}
	return out
}

func TestReassembleRoundtrip(t *testing.T) {
	msgHdr := mkContent(8)
	content := mkContent(10000)
	frags, err := FragmentMessage(TypeRegionUpdate, 11, 96, msgHdr, content, 1200)
	if err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler()
	msg := pushAll(t, ra, frags)
	if msg == nil {
		t.Fatal("no message completed")
	}
	if msg.Header.Type != TypeRegionUpdate || msg.Header.WindowID != 11 {
		t.Fatalf("header = %+v", msg.Header)
	}
	if !bytes.Equal(msg.Body[:8], msgHdr) || !bytes.Equal(msg.Body[8:], content) {
		t.Fatal("reassembled body mismatch")
	}
	if ra.Dropped() != 0 {
		t.Fatalf("dropped = %d", ra.Dropped())
	}
}

func TestReassembleOrphan(t *testing.T) {
	frags, err := FragmentMessage(TypeRegionUpdate, 1, 96, mkContent(8), mkContent(5000), 1200)
	if err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler()
	// Lose the first fragment: continuation arrives with no start.
	if _, err := ra.Push(frags[1].Payload, frags[1].Marker); !errors.Is(err, ErrOrphanFragment) {
		t.Fatalf("err = %v, want ErrOrphanFragment", err)
	}
	if ra.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", ra.Dropped())
	}
}

func TestReassembleInterrupted(t *testing.T) {
	a, err := FragmentMessage(TypeRegionUpdate, 1, 96, mkContent(8), mkContent(5000), 1200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FragmentMessage(TypeRegionUpdate, 2, 96, mkContent(8), mkContent(100), 1200)
	if err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler()
	if _, err := ra.Push(a[0].Payload, a[0].Marker); err != nil {
		t.Fatal(err)
	}
	// New message starts before the old one finished (its tail was lost).
	msg, err := ra.Push(b[0].Payload, b[0].Marker)
	if !errors.Is(err, ErrInterruptedReass) {
		t.Fatalf("err = %v, want ErrInterruptedReass", err)
	}
	if msg == nil || msg.Header.WindowID != 2 {
		t.Fatalf("new message should complete, got %+v", msg)
	}
}

func TestReassembleNonFragmentable(t *testing.T) {
	// A WindowManagerInfo passes through even mid-reassembly of a
	// RegionUpdate, without disturbing it.
	ru, err := FragmentMessage(TypeRegionUpdate, 1, 96, mkContent(8), mkContent(5000), 1200)
	if err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler()
	if _, err := ra.Push(ru[0].Payload, ru[0].Marker); err != nil {
		t.Fatal(err)
	}
	wmi := []byte{byte(TypeWindowManagerInfo), 0, 0, 0, 0xDE, 0xAD}
	msg, err := ra.Push(wmi, false)
	if err != nil || msg == nil || msg.Header.Type != TypeWindowManagerInfo {
		t.Fatalf("WMI passthrough failed: %+v, %v", msg, err)
	}
	// Finish the RegionUpdate.
	out := pushAll(t, ra, ru[1:])
	if out == nil {
		t.Fatal("RegionUpdate did not complete after interleaved WMI")
	}
}

func TestReassembleAbort(t *testing.T) {
	ru, err := FragmentMessage(TypeRegionUpdate, 1, 96, mkContent(8), mkContent(5000), 1200)
	if err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler()
	if _, err := ra.Push(ru[0].Payload, ru[0].Marker); err != nil {
		t.Fatal(err)
	}
	ra.Abort()
	if ra.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", ra.Dropped())
	}
	// After abort, the rest of the old message is orphaned.
	if _, err := ra.Push(ru[1].Payload, ru[1].Marker); !errors.Is(err, ErrOrphanFragment) {
		t.Fatalf("err = %v, want ErrOrphanFragment", err)
	}
}

func TestQuickFragmentReassembleIdentity(t *testing.T) {
	// For any content and reasonable MTU, fragment → reassemble is the
	// identity on (header fields, body).
	f := func(windowID uint16, contentPT uint8, content []byte, mtuSeed uint16) bool {
		contentPT &= 0x7F
		mtu := 20 + int(mtuSeed%1400)
		msgHdr := mkContent(8)
		frags, err := FragmentMessage(TypeRegionUpdate, windowID, contentPT, msgHdr, content, mtu)
		if err != nil {
			return false
		}
		ra := NewReassembler()
		var got *Message
		for _, fr := range frags {
			msg, err := ra.Push(fr.Payload, fr.Marker)
			if err != nil {
				return false
			}
			if msg != nil {
				got = msg
			}
		}
		if got == nil {
			return false
		}
		_, pt := UnpackUpdateParam(got.Header.Parameter)
		return got.Header.WindowID == windowID &&
			pt == contentPT &&
			bytes.Equal(got.Body, append(append([]byte(nil), msgHdr...), content...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
