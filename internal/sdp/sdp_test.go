package sdp

import (
	"strings"
	"testing"
)

// TestSDPExample103 parses the draft's verbatim Section 10.3 example
// (experiment E14).
func TestSDPExample103(t *testing.T) {
	// The example is an m-section body; prepend minimal session lines.
	full := "v=0\r\ns=-\r\nt=0 0\r\n" + Example103
	d, err := Parse(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Media) != 4 {
		t.Fatalf("media sections = %d, want 4", len(d.Media))
	}
	s, err := ParseOffer(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.BFCPPort != 50000 {
		t.Errorf("BFCP port = %d", s.BFCPPort)
	}
	if s.RemotingUDPPort != 6000 || s.RemotingTCPPort != 6000 {
		t.Errorf("remoting ports = %d/%d, want 6000/6000", s.RemotingUDPPort, s.RemotingTCPPort)
	}
	if s.RemotingPT != 99 {
		t.Errorf("remoting PT = %d, want 99", s.RemotingPT)
	}
	if !s.Retransmissions {
		t.Error("retransmissions=yes not detected")
	}
	if s.HIPPort != 6006 {
		t.Errorf("HIP port = %d, want 6006", s.HIPPort)
	}
	// The m-line says PT 100 even though the example's rtpmap says 99;
	// the m-line format list wins.
	if s.HIPPT != 100 {
		t.Errorf("HIP PT = %d, want 100 (from m-line)", s.HIPPT)
	}
	if s.Rate != 90000 {
		t.Errorf("rate = %d", s.Rate)
	}
}

func TestBuildOfferRoundtrip(t *testing.T) {
	cfg := OfferConfig{
		Address:         "192.0.2.10",
		RemotingPort:    6000,
		RemotingPT:      99,
		OfferUDP:        true,
		OfferTCP:        true,
		Retransmissions: true,
		HIPPort:         6006,
		HIPPT:           100,
		BFCPPort:        50000,
		FloorID:         0,
		HIPStream:       10,
	}
	d, err := BuildOffer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	text := d.Marshal()
	for _, want := range []string{
		"m=application 50000 TCP/BFCP *",
		"a=floorid:0 m-stream:10",
		"m=application 6000 RTP/AVP 99",
		"a=rtpmap:99 remoting/90000",
		"a=fmtp:99 retransmissions=yes",
		"m=application 6000 TCP/RTP/AVP 99",
		"m=application 6006 TCP/RTP/AVP 100",
		"a=rtpmap:100 hip/90000",
		"a=label:10",
	} {
		if !strings.Contains(text, want+"\r\n") {
			t.Errorf("offer missing %q:\n%s", want, text)
		}
	}

	back, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseOffer(back)
	if err != nil {
		t.Fatal(err)
	}
	if s.RemotingPT != 99 || s.HIPPT != 100 || !s.Retransmissions ||
		s.RemotingUDPPort != 6000 || s.RemotingTCPPort != 6000 ||
		s.HIPPort != 6006 || s.BFCPPort != 50000 {
		t.Fatalf("roundtrip session = %+v", s)
	}
}

func TestBuildOfferValidation(t *testing.T) {
	if _, err := BuildOffer(OfferConfig{RemotingPort: 1, HIPPort: 2}); err == nil {
		t.Error("no transport should fail")
	}
	if _, err := BuildOffer(OfferConfig{OfferUDP: true, HIPPort: 2}); err == nil {
		t.Error("missing remoting port should fail")
	}
}

func TestParseOfferPortMismatch(t *testing.T) {
	text := "v=0\r\ns=-\r\nt=0 0\r\n" +
		"m=application 6000 RTP/AVP 99\r\n" +
		"a=rtpmap:99 remoting/90000\r\n" +
		"m=application 6002 TCP/RTP/AVP 99\r\n" + // different port: illegal
		"a=rtpmap:99 remoting/90000\r\n" +
		"m=application 6006 TCP/RTP/AVP 100\r\n" +
		"a=rtpmap:100 hip/90000\r\n"
	d, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseOffer(d); err == nil {
		t.Fatal("mismatched UDP/TCP ports must be rejected")
	}
}

func TestParseOfferMissingStreams(t *testing.T) {
	onlyHIP := "v=0\r\ns=-\r\nt=0 0\r\nm=application 6006 TCP/RTP/AVP 100\r\na=rtpmap:100 hip/90000\r\n"
	d, err := Parse(onlyHIP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseOffer(d); err == nil {
		t.Error("offer without remoting must fail")
	}
	onlyRemoting := "v=0\r\ns=-\r\nt=0 0\r\nm=application 6000 RTP/AVP 99\r\na=rtpmap:99 remoting/90000\r\n"
	d, err = Parse(onlyRemoting)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseOffer(d); err == nil {
		t.Error("offer without hip must fail")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("s=-\r\nt=0 0\r\n"); err == nil {
		t.Error("missing v= should fail")
	}
	if _, err := Parse("v=0\r\nbogus line\r\n"); err == nil {
		t.Error("malformed line should fail")
	}
	if _, err := Parse("v=0\r\nm=application notaport RTP/AVP 99\r\n"); err == nil {
		t.Error("bad m-line port should fail")
	}
	if _, err := Parse("v=0\r\nm=application\r\n"); err == nil {
		t.Error("short m-line should fail")
	}
}

func TestRTPMapErrors(t *testing.T) {
	m := Media{Attributes: []Attribute{{Key: "rtpmap", Value: "999 remoting/90000"}}}
	if _, err := m.RTPMaps(); err == nil {
		t.Error("PT > 127 should fail")
	}
	m = Media{Attributes: []Attribute{{Key: "rtpmap", Value: "garbage"}}}
	if _, err := m.RTPMaps(); err == nil {
		t.Error("malformed rtpmap should fail")
	}
	m = Media{Attributes: []Attribute{{Key: "rtpmap", Value: "99 remoting/zero"}}}
	if _, err := m.RTPMaps(); err == nil {
		t.Error("bad rate should fail")
	}
	// Rate defaults when omitted.
	m = Media{Attributes: []Attribute{{Key: "rtpmap", Value: "99 remoting"}}}
	maps, err := m.RTPMaps()
	if err != nil || len(maps) != 1 || maps[0].Rate != DefaultRate {
		t.Errorf("default rate: %v, %v", maps, err)
	}
}

func TestMarshalDefaults(t *testing.T) {
	d := &Description{}
	text := d.Marshal()
	if !strings.Contains(text, "s=-\r\n") || !strings.Contains(text, "t=0 0\r\n") {
		t.Fatalf("defaults missing:\n%s", text)
	}
}
