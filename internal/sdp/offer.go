package sdp

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"appshare/internal/codec"
)

// OfferConfig describes an AH's sharing session for SDP generation,
// following the Section 10.3 example: an optional BFCP floor stream, the
// remoting stream offered over UDP and/or TCP, and the HIP return stream.
type OfferConfig struct {
	// Address is the connection address ("IN IP4 203.0.113.1" payload
	// host part). Empty means 127.0.0.1.
	Address string
	// RemotingPort carries the remoting stream. The draft requires the
	// SAME port for UDP and TCP when both offer the same content.
	RemotingPort int
	// RemotingPT is the RTP payload type for application/remoting
	// (example uses 99).
	RemotingPT uint8
	// OfferUDP and OfferTCP select the offered transports.
	OfferUDP, OfferTCP bool
	// Retransmissions announces UDP retransmission support (mandatory
	// parameter of the remoting media type).
	Retransmissions bool
	// TileStore announces the tile-store capability as a "tilestore"
	// fmtp parameter carrying the negotiated tile size and dictionary
	// capacity ("tilestore=<size>/<capacity>"). An answerer that echoes
	// the parameter receives TileReference messages; one that omits it
	// gets plain pixel updates. TileSize/TileDictCapacity zero take the
	// codec defaults.
	TileStore        bool
	TileSize         int
	TileDictCapacity int
	// Relay announces the relay-cascade capability as a "relay=yes" fmtp
	// parameter (see DESIGN.md "Relay cascade"): an answerer that echoes
	// it may open the RelaySubscribe handshake and receive forwarded
	// prepared batches with StreamDescriptor delimiters. Peers that omit
	// it are ordinary viewers.
	Relay bool
	// HIPPort and HIPPT describe the HIP stream (example: 6006, PT 100).
	HIPPort int
	HIPPT   uint8
	// BFCPPort (0 = no floor control) and the label tying HIP to the
	// BFCP floor per RFC 4583.
	BFCPPort  int
	FloorID   int
	HIPStream int
	// Rate overrides the 90 kHz default clock rate.
	Rate int
}

// BuildOffer generates the AH's session description, mirroring the
// Section 10.3 example.
func BuildOffer(cfg OfferConfig) (*Description, error) {
	if !cfg.OfferUDP && !cfg.OfferTCP {
		return nil, errors.New("sdp: offer must include UDP or TCP remoting")
	}
	if cfg.RemotingPort <= 0 || cfg.HIPPort <= 0 {
		return nil, errors.New("sdp: remoting and HIP ports required")
	}
	rate := cfg.Rate
	if rate == 0 {
		rate = DefaultRate
	}
	addr := cfg.Address
	if addr == "" {
		addr = "127.0.0.1"
	}
	d := &Description{
		Version:     0,
		Origin:      fmt.Sprintf("- 0 0 IN IP4 %s", addr),
		SessionName: "application sharing",
		Connection:  fmt.Sprintf("IN IP4 %s", addr),
	}

	if cfg.BFCPPort > 0 {
		d.Media = append(d.Media, Media{
			Type: "application", Port: cfg.BFCPPort, Proto: "TCP/BFCP",
			Formats: []string{"*"},
			Attributes: []Attribute{
				{Key: "floorid", Value: fmt.Sprintf("%d m-stream:%d", cfg.FloorID, cfg.HIPStream)},
			},
		})
	}

	remotingAttrs := func() []Attribute {
		attrs := []Attribute{
			{Key: "rtpmap", Value: fmt.Sprintf("%d %s/%d", cfg.RemotingPT, SubtypeRemoting, rate)},
		}
		retrans := "no"
		if cfg.Retransmissions {
			retrans = "yes"
		}
		fmtp := fmt.Sprintf("%d retransmissions=%s", cfg.RemotingPT, retrans)
		if cfg.TileStore {
			ts, cap := cfg.TileSize, cfg.TileDictCapacity
			if ts <= 0 {
				ts = codec.DefaultTileSize
			}
			if cap <= 0 {
				cap = codec.DefaultTileDictCapacity
			}
			fmtp += fmt.Sprintf(";tilestore=%d/%d", ts, cap)
		}
		if cfg.Relay {
			fmtp += ";relay=yes"
		}
		attrs = append(attrs, Attribute{Key: "fmtp", Value: fmtp})
		return attrs
	}
	if cfg.OfferUDP {
		d.Media = append(d.Media, Media{
			Type: "application", Port: cfg.RemotingPort, Proto: "RTP/AVP",
			Formats:    []string{strconv.Itoa(int(cfg.RemotingPT))},
			Attributes: remotingAttrs(),
		})
	}
	if cfg.OfferTCP {
		d.Media = append(d.Media, Media{
			Type: "application", Port: cfg.RemotingPort, Proto: "TCP/RTP/AVP",
			Formats:    []string{strconv.Itoa(int(cfg.RemotingPT))},
			Attributes: remotingAttrs(),
		})
	}

	hipAttrs := []Attribute{
		{Key: "rtpmap", Value: fmt.Sprintf("%d %s/%d", cfg.HIPPT, SubtypeHIP, rate)},
	}
	if cfg.BFCPPort > 0 {
		hipAttrs = append(hipAttrs, Attribute{Key: "label", Value: strconv.Itoa(cfg.HIPStream)})
	}
	d.Media = append(d.Media, Media{
		Type: "application", Port: cfg.HIPPort, Proto: "TCP/RTP/AVP",
		Formats:    []string{strconv.Itoa(int(cfg.HIPPT))},
		Attributes: hipAttrs,
	})
	return d, nil
}

// Session is the negotiated view a participant extracts from an offer.
type Session struct {
	RemotingPT      uint8
	RemotingUDPPort int // 0 when not offered
	RemotingTCPPort int // 0 when not offered
	Rate            int
	Retransmissions bool
	// TileStore reports the "tilestore" fmtp capability with its
	// negotiated tile size and dictionary capacity (zero when absent).
	TileStore        bool
	TileSize         int
	TileDictCapacity int
	// Relay reports the "relay=yes" capability: the peer may subscribe
	// to forwarded prepared batches via the RelaySubscribe handshake.
	Relay    bool
	HIPPT    uint8
	HIPPort  int
	BFCPPort int // 0 when absent
}

// ParseOffer extracts the sharing session parameters from a description,
// enforcing the Section 10.3 rule that UDP and TCP remoting of the same
// content use the same port.
func ParseOffer(d *Description) (*Session, error) {
	s := &Session{Rate: DefaultRate}
	for i := range d.Media {
		m := &d.Media[i]
		if m.Type != "application" {
			continue
		}
		if m.Proto == "TCP/BFCP" {
			s.BFCPPort = m.Port
			continue
		}
		maps, err := m.RTPMaps()
		if err != nil {
			return nil, err
		}
		for _, rm := range maps {
			switch rm.Encoding {
			case SubtypeRemoting:
				s.RemotingPT = rm.PayloadType
				s.Rate = rm.Rate
				switch m.Proto {
				case "RTP/AVP":
					s.RemotingUDPPort = m.Port
				case "TCP/RTP/AVP":
					s.RemotingTCPPort = m.Port
				}
				if v, ok := m.Attr("fmtp"); ok {
					if strings.Contains(v, "retransmissions=yes") {
						s.Retransmissions = true
					}
					if ts, cap, ok := parseTileStoreParam(v); ok {
						s.TileStore = true
						s.TileSize = ts
						s.TileDictCapacity = cap
					}
					if parseRelayParam(v) {
						s.Relay = true
					}
				}
			case SubtypeHIP:
				// The draft example carries "a=rtpmap:99 hip/90000" under
				// the PT-100 m-line; trust the m-line format list when it
				// disagrees (known erratum in the example).
				s.HIPPT = rm.PayloadType
				if len(m.Formats) == 1 {
					if pt, err := strconv.Atoi(m.Formats[0]); err == nil && pt >= 0 && pt <= 127 {
						s.HIPPT = uint8(pt)
					}
				}
				s.HIPPort = m.Port
			}
		}
	}
	if s.RemotingUDPPort == 0 && s.RemotingTCPPort == 0 {
		return nil, errors.New("sdp: offer has no remoting stream")
	}
	if s.RemotingUDPPort != 0 && s.RemotingTCPPort != 0 && s.RemotingUDPPort != s.RemotingTCPPort {
		return nil, fmt.Errorf("sdp: UDP (%d) and TCP (%d) remoting ports MUST match",
			s.RemotingUDPPort, s.RemotingTCPPort)
	}
	if s.HIPPort == 0 {
		return nil, errors.New("sdp: offer has no hip stream")
	}
	return s, nil
}

// parseRelayParam reports whether a remoting fmtp value carries the
// "relay=yes" capability as its own parameter. Anything else —
// including "relay=no" and malformed variants — is treated as absent: a
// peer that cannot state its own capability must not be forwarded to.
func parseRelayParam(fmtp string) bool {
	for _, f := range strings.FieldsFunc(fmtp, func(r rune) bool { return r == ';' || r == ' ' }) {
		if f == "relay=yes" {
			return true
		}
	}
	return false
}

// parseTileStoreParam extracts a "tilestore=<size>/<capacity>" parameter
// from a remoting fmtp value. Malformed or non-positive values are
// treated as absent — a peer that cannot parse its own capability must
// not be sent tile references.
func parseTileStoreParam(fmtp string) (size, capacity int, ok bool) {
	for _, f := range strings.FieldsFunc(fmtp, func(r rune) bool { return r == ';' || r == ' ' }) {
		val, found := strings.CutPrefix(f, "tilestore=")
		if !found {
			continue
		}
		a, b, found := strings.Cut(val, "/")
		if !found {
			return 0, 0, false
		}
		size, err1 := strconv.Atoi(a)
		capacity, err2 := strconv.Atoi(b)
		if err1 != nil || err2 != nil || size <= 0 || capacity <= 0 {
			return 0, 0, false
		}
		return size, capacity, true
	}
	return 0, 0, false
}

// Example103 is the SDP body of the draft's Section 10.3 example,
// reproduced verbatim (including the fmtp and rtpmap quirks of the
// original).
const Example103 = "m=application 50000 TCP/BFCP *\r\n" +
	"a=floorid:0 m-stream:10\r\n" +
	"m=application 6000 RTP/AVP 99\r\n" +
	"a=rtpmap:99 remoting/90000\r\n" +
	"a=fmtp: retransmissions=yes\r\n" +
	"m=application 6000 TCP/RTP/AVP 99\r\n" +
	"a=rtpmap:99 remoting/90000\r\n" +
	"m=application 6006 TCP/RTP/AVP 100\r\n" +
	"a=rtpmap:99 hip/90000\r\n" +
	"a=label:10\r\n"
