// Package sdp implements the Session Description Protocol mapping of
// draft-boyaci-avt-app-sharing-00 Section 10: describing remoting and HIP
// RTP streams (media subtypes "remoting" and "hip" under the
// "application" media type), the mandatory "retransmissions" fmtp
// parameter, and the BFCP floor stream association via "floorid"/"label"
// (RFC 4583).
//
// Only the subset of SDP (RFC 4566) needed for these sessions is
// implemented: session-level v/o/s/c/t lines and application m-sections
// with rtpmap, fmtp, label and floorid attributes.
package sdp

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Media subtypes registered in Section 9.3.
const (
	SubtypeRemoting = "remoting"
	SubtypeHIP      = "hip"
)

// DefaultRate is the RTP clock rate both media registrations default to.
const DefaultRate = 90000

// Attribute is one a= line, split at the first colon ("label:10" →
// {"label", "10"}; flag attributes have an empty Value).
type Attribute struct {
	Key, Value string
}

// Media is one m-section.
type Media struct {
	Type       string // "application"
	Port       int
	Proto      string // "RTP/AVP", "TCP/RTP/AVP", "TCP/BFCP"
	Formats    []string
	Attributes []Attribute
}

// Attr returns the first value for key and whether it was present.
func (m *Media) Attr(key string) (string, bool) {
	for _, a := range m.Attributes {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// RTPMap describes an a=rtpmap line: payload type, encoding name, rate.
type RTPMap struct {
	PayloadType uint8
	Encoding    string
	Rate        int
}

// RTPMaps parses every a=rtpmap attribute of the media section. Two
// rtpmap lines binding the same payload-type number within one media
// section are rejected: the number is the demultiplexing key, and a
// duplicate would make the stream's encoding ambiguous (an answer could
// bind PT 99 to both "remoting" and something else).
func (m *Media) RTPMaps() ([]RTPMap, error) {
	var out []RTPMap
	seen := make(map[uint8]bool)
	for _, a := range m.Attributes {
		if a.Key != "rtpmap" {
			continue
		}
		var rm RTPMap
		fields := strings.Fields(a.Value)
		if len(fields) != 2 {
			return nil, fmt.Errorf("sdp: malformed rtpmap %q", a.Value)
		}
		pt, err := strconv.Atoi(fields[0])
		if err != nil || pt < 0 || pt > 127 {
			return nil, fmt.Errorf("sdp: bad rtpmap payload type %q", fields[0])
		}
		if seen[uint8(pt)] {
			return nil, fmt.Errorf("sdp: duplicate rtpmap for payload type %d", pt)
		}
		seen[uint8(pt)] = true
		rm.PayloadType = uint8(pt)
		encRate := strings.SplitN(fields[1], "/", 2)
		rm.Encoding = encRate[0]
		rm.Rate = DefaultRate
		if len(encRate) == 2 {
			rate, err := strconv.Atoi(encRate[1])
			if err != nil || rate <= 0 {
				return nil, fmt.Errorf("sdp: bad rtpmap rate %q", fields[1])
			}
			rm.Rate = rate
		}
		out = append(out, rm)
	}
	return out, nil
}

// Description is a parsed or generated session description.
type Description struct {
	Version     int
	Origin      string
	SessionName string
	Connection  string
	Timing      string
	Media       []Media
}

// Marshal renders the description in SDP wire format (CRLF line ends).
func (d *Description) Marshal() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v=%d\r\n", d.Version)
	if d.Origin != "" {
		fmt.Fprintf(&b, "o=%s\r\n", d.Origin)
	}
	name := d.SessionName
	if name == "" {
		name = "-"
	}
	fmt.Fprintf(&b, "s=%s\r\n", name)
	if d.Connection != "" {
		fmt.Fprintf(&b, "c=%s\r\n", d.Connection)
	}
	timing := d.Timing
	if timing == "" {
		timing = "0 0"
	}
	fmt.Fprintf(&b, "t=%s\r\n", timing)
	for _, m := range d.Media {
		fmt.Fprintf(&b, "m=%s %d %s %s\r\n", m.Type, m.Port, m.Proto, strings.Join(m.Formats, " "))
		for _, a := range m.Attributes {
			if a.Value == "" {
				fmt.Fprintf(&b, "a=%s\r\n", a.Key)
			} else {
				fmt.Fprintf(&b, "a=%s:%s\r\n", a.Key, a.Value)
			}
		}
	}
	return b.String()
}

// Parse reads an SDP description. Unknown session-level lines are
// ignored; media sections collect their attributes.
func Parse(s string) (*Description, error) {
	d := &Description{Version: -1}
	var cur *Media
	for lineNo, raw := range strings.Split(s, "\n") {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if len(line) < 2 || line[1] != '=' {
			return nil, fmt.Errorf("sdp: line %d: malformed %q", lineNo+1, line)
		}
		val := line[2:]
		switch line[0] {
		case 'v':
			v, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return nil, fmt.Errorf("sdp: line %d: bad version %q", lineNo+1, val)
			}
			d.Version = v
		case 'o':
			d.Origin = val
		case 's':
			d.SessionName = val
		case 'c':
			if cur == nil {
				d.Connection = val
			}
		case 't':
			d.Timing = val
		case 'm':
			fields := strings.Fields(val)
			if len(fields) < 3 {
				return nil, fmt.Errorf("sdp: line %d: malformed m-line %q", lineNo+1, val)
			}
			port, err := strconv.Atoi(fields[1])
			if err != nil || port < 0 || port > 65535 {
				return nil, fmt.Errorf("sdp: line %d: bad port %q", lineNo+1, fields[1])
			}
			d.Media = append(d.Media, Media{
				Type:    fields[0],
				Port:    port,
				Proto:   fields[2],
				Formats: fields[3:],
			})
			cur = &d.Media[len(d.Media)-1]
		case 'a':
			if cur == nil {
				continue // session-level attributes not modelled
			}
			key, value, _ := strings.Cut(val, ":")
			// Tolerate the draft example's "a=fmtp: retransmissions=yes"
			// (space after the colon, no format token).
			cur.Attributes = append(cur.Attributes, Attribute{Key: key, Value: strings.TrimSpace(value)})
		default:
			// Ignore other line types (b=, k=, ...).
		}
	}
	if d.Version != 0 {
		return nil, errors.New("sdp: missing or unsupported v= line")
	}
	return d, nil
}
