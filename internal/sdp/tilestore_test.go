package sdp

import (
	"strings"
	"testing"
)

func parseOfferText(t *testing.T, text string) (*Session, error) {
	t.Helper()
	d, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return ParseOffer(d)
}

func TestTileStoreFmtpRoundTrip(t *testing.T) {
	cases := []struct {
		name          string
		cfg           OfferConfig
		wantSize      int
		wantCap       int
		wantTileStore bool
	}{
		{"defaults", OfferConfig{TileStore: true}, 32, 4096, true},
		{"explicit", OfferConfig{TileStore: true, TileSize: 16, TileDictCapacity: 512}, 16, 512, true},
		{"absent", OfferConfig{}, 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.RemotingPort, cfg.RemotingPT = 6004, 99
			cfg.HIPPort, cfg.HIPPT = 6006, 100
			cfg.OfferUDP, cfg.OfferTCP = true, true
			d, err := BuildOffer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			text := d.Marshal()
			if got := strings.Contains(text, "tilestore="); got != tc.wantTileStore {
				t.Fatalf("offer contains tilestore=%v, want %v:\n%s", got, tc.wantTileStore, text)
			}
			s, err := parseOfferText(t, text)
			if err != nil {
				t.Fatal(err)
			}
			if s.TileStore != tc.wantTileStore || s.TileSize != tc.wantSize || s.TileDictCapacity != tc.wantCap {
				t.Fatalf("parsed tilestore=%v %d/%d, want %v %d/%d",
					s.TileStore, s.TileSize, s.TileDictCapacity, tc.wantTileStore, tc.wantSize, tc.wantCap)
			}
		})
	}
}

// TestTileStoreParamMalformed: a peer advertising a capability it cannot
// spell must be treated as not having it — sending tile references to a
// confused peer paints nothing.
func TestTileStoreParamMalformed(t *testing.T) {
	cases := []struct {
		fmtp string
		ok   bool
		size int
		cap  int
	}{
		{"99 retransmissions=no;tilestore=32/4096", true, 32, 4096},
		{"99 tilestore=8/64 retransmissions=yes", true, 8, 64},
		{"99 retransmissions=yes", false, 0, 0},
		{"99 tilestore=32", false, 0, 0},
		{"99 tilestore=32/", false, 0, 0},
		{"99 tilestore=/64", false, 0, 0},
		{"99 tilestore=0/64", false, 0, 0},
		{"99 tilestore=32/-1", false, 0, 0},
		{"99 tilestore=a/b", false, 0, 0},
		{"99 tilestores=32/64", false, 0, 0},
	}
	for _, tc := range cases {
		size, capacity, ok := parseTileStoreParam(tc.fmtp)
		if ok != tc.ok || size != tc.size || capacity != tc.cap {
			t.Errorf("parseTileStoreParam(%q) = %d/%d %v, want %d/%d %v",
				tc.fmtp, size, capacity, ok, tc.size, tc.cap, tc.ok)
		}
	}
}

// TestTileStoreAnswerDuplicateRTPMapRejected: a description mapping the
// same payload type twice is ambiguous — an answer could claim the
// tile-store fmtp applied to either mapping — and is rejected outright.
func TestTileStoreAnswerDuplicateRTPMapRejected(t *testing.T) {
	text := strings.Join([]string{
		"v=0",
		"o=- 0 0 IN IP4 127.0.0.1",
		"s=application sharing",
		"c=IN IP4 127.0.0.1",
		"t=0 0",
		"m=application 6004 RTP/AVP 99",
		"a=rtpmap:99 remoting/90000",
		"a=rtpmap:99 remoting/8000",
		"a=fmtp:99 retransmissions=no;tilestore=32/4096",
		"m=application 6006 TCP/RTP/AVP 100",
		"a=rtpmap:100 hip/90000",
		"",
	}, "\r\n")
	d, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseOffer(d); err == nil || !strings.Contains(err.Error(), "duplicate rtpmap") {
		t.Fatalf("duplicate rtpmap accepted (err = %v)", err)
	}
}
