package transport

import (
	"io"
	"sync"
	"time"
)

// RatedWriter drains writes to an underlying writer at a bounded byte
// rate, exposing the number of bytes still queued. It models a TCP send
// buffer over a slow path: the draft's Implementation Notes (Section 7)
// direct the AH to "monitor the state of their TCP transmission buffers
// (through mechanisms such as the select() command) and only send the
// most recent screen data when there is no backlog". Backlog is that
// signal.
//
// Writes never block; bytes queue until the drain goroutine ships them.
type RatedWriter struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   [][]byte
	backlog int
	closed  bool
	err     error
	w       io.Writer
	rate    int // bytes per second; <= 0 means unlimited
	done    chan struct{}
	stop    chan struct{}
}

// NewRatedWriter returns a RatedWriter shipping to w at bytesPerSecond
// (<= 0 for unlimited).
func NewRatedWriter(w io.Writer, bytesPerSecond int) *RatedWriter {
	rw := &RatedWriter{w: w, rate: bytesPerSecond, done: make(chan struct{}), stop: make(chan struct{})}
	rw.cond = sync.NewCond(&rw.mu)
	go rw.drain()
	return rw
}

// Write implements io.Writer. It queues p (copied) and returns
// immediately; a prior drain error is reported on the next Write.
func (rw *RatedWriter) Write(p []byte) (int, error) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.closed {
		return 0, ErrClosed
	}
	if rw.err != nil {
		return 0, rw.err
	}
	rw.queue = append(rw.queue, append([]byte(nil), p...))
	rw.backlog += len(p)
	rw.cond.Signal()
	return len(p), nil
}

// Backlog returns the bytes queued but not yet shipped.
func (rw *RatedWriter) Backlog() int {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.backlog
}

// Flush blocks until the queue is empty or the writer fails/closes.
func (rw *RatedWriter) Flush() error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	for rw.backlog > 0 && rw.err == nil && !rw.closed {
		rw.cond.Wait()
	}
	return rw.err
}

// Close stops the drain goroutine after the current chunk. Queued but
// unshipped bytes are discarded.
func (rw *RatedWriter) Close() error {
	rw.mu.Lock()
	if rw.closed {
		rw.mu.Unlock()
		return nil
	}
	rw.closed = true
	rw.cond.Broadcast()
	rw.mu.Unlock()
	close(rw.stop)
	<-rw.done
	return nil
}

func (rw *RatedWriter) drain() {
	defer close(rw.done)
	const chunk = 1400 // ship in MTU-sized pieces for a smooth rate
	for {
		rw.mu.Lock()
		for len(rw.queue) == 0 && !rw.closed {
			rw.cond.Wait()
		}
		if rw.closed {
			rw.mu.Unlock()
			return
		}
		buf := rw.queue[0]
		n := min(chunk, len(buf))
		piece := buf[:n]
		rw.mu.Unlock()

		start := time.Now()
		_, err := rw.w.Write(piece)

		rw.mu.Lock()
		if err != nil {
			rw.err = err
			rw.queue = nil
			rw.backlog = 0
			rw.cond.Broadcast()
			rw.mu.Unlock()
			return
		}
		if len(buf) == n {
			rw.queue = rw.queue[1:]
		} else {
			rw.queue[0] = buf[n:]
		}
		rw.backlog -= n
		rw.cond.Broadcast()
		rate := rw.rate
		rw.mu.Unlock()

		if rate > 0 {
			want := time.Duration(float64(n) / float64(rate) * float64(time.Second))
			if elapsed := time.Since(start); elapsed < want {
				// Interruptible pacing sleep so Close never waits out a
				// long quantum on a slow link.
				timer := time.NewTimer(want - elapsed)
				select {
				case <-timer.C:
				case <-rw.stop:
					timer.Stop()
					return
				}
			}
		}
	}
}
