package transport

import (
	"io"
	"sync"
	"time"
)

// RatedWriter drains writes to an underlying writer at a bounded byte
// rate, exposing the number of bytes still queued. It models a TCP send
// buffer over a slow path: the draft's Implementation Notes (Section 7)
// direct the AH to "monitor the state of their TCP transmission buffers
// (through mechanisms such as the select() command) and only send the
// most recent screen data when there is no backlog". Backlog is that
// signal.
//
// Writes never block; bytes queue until the drain goroutine ships them.
// Beyond backlog, the writer reports two health signals the AH's
// liveness sweep consumes: StallDuration (how long the drain has made no
// progress with bytes queued — a wedged peer) and Discarded (bytes
// dropped by Close or a drain error — the data-loss a caller would
// otherwise mistake for a clean close).
type RatedWriter struct {
	mu sync.Mutex
	// work wakes the drain goroutine when bytes arrive or the writer
	// closes; idle wakes Flush/CloseDrain waiters when the backlog
	// shrinks, a drain error lands, or the writer closes. Separate
	// conditions mean a Write can never waste its wakeup on a Flush
	// waiter (leaving the drain asleep) and vice versa.
	work         *sync.Cond
	idle         *sync.Cond
	queue        [][]byte
	backlog      int
	writing      bool // a chunk is in flight in the underlying Write
	drained      int64
	discarded    int64
	lastProgress time.Time
	closed       bool
	err          error
	w            io.Writer
	rate         int // bytes per second; <= 0 means unlimited
	now          func() time.Time
	done         chan struct{}
	stop         chan struct{}
}

// NewRatedWriter returns a RatedWriter shipping to w at bytesPerSecond
// (<= 0 for unlimited).
func NewRatedWriter(w io.Writer, bytesPerSecond int) *RatedWriter {
	return NewRatedWriterAt(w, bytesPerSecond, time.Now)
}

// NewRatedWriterAt is NewRatedWriter with an injected clock. The clock
// feeds the stall detector (lastProgress/StallDuration) only — pacing
// sleeps still run in real time — so a simulation driving a virtual
// clock gets deterministic stall decisions without changing drain
// behavior.
func NewRatedWriterAt(w io.Writer, bytesPerSecond int, now func() time.Time) *RatedWriter {
	if now == nil {
		now = time.Now
	}
	rw := &RatedWriter{w: w, rate: bytesPerSecond, now: now, done: make(chan struct{}), stop: make(chan struct{})}
	rw.work = sync.NewCond(&rw.mu)
	rw.idle = sync.NewCond(&rw.mu)
	go rw.drain()
	return rw
}

// Write implements io.Writer. It queues p (copied) and returns
// immediately; a prior drain error is reported on the next Write.
func (rw *RatedWriter) Write(p []byte) (int, error) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.closed {
		return 0, ErrClosed
	}
	if rw.err != nil {
		return 0, rw.err
	}
	if rw.backlog == 0 {
		// The stall clock for this burst starts now, not at the last
		// drain progress of a previous burst.
		rw.lastProgress = rw.now()
	}
	rw.queue = append(rw.queue, append([]byte(nil), p...))
	rw.backlog += len(p)
	rw.work.Signal()
	return len(p), nil
}

// Backlog returns the bytes queued but not yet shipped.
func (rw *RatedWriter) Backlog() int {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.backlog
}

// Drained returns the cumulative bytes shipped to the underlying writer.
func (rw *RatedWriter) Drained() int64 {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.drained
}

// Discarded returns the cumulative bytes dropped without being shipped —
// the queue remnant discarded by Close, or bytes flushed away when the
// underlying writer failed. A non-zero value after Close distinguishes
// lossy teardown from a clean drain.
func (rw *RatedWriter) Discarded() int64 {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.discarded
}

// Idle reports whether the writer has nothing left to do: no bytes
// queued and no chunk in flight in the underlying writer. Unlike a
// Backlog()==0 check it cannot race the drain's post-write accounting,
// so a single-stepping caller (the netsim settle loop) can use it as a
// stable "fully drained" predicate.
func (rw *RatedWriter) Idle() bool {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.backlog == 0 && !rw.writing
}

// StallDuration reports how long the drain has made no progress while
// bytes were queued: zero when the queue is empty or flowing, and the
// age of the oldest unshipped progress otherwise. A growing value with a
// stable backlog means the peer has stopped reading entirely — a
// stronger death signal than backlog alone, which also rises under mere
// congestion.
func (rw *RatedWriter) StallDuration() time.Duration {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.backlog == 0 || rw.lastProgress.IsZero() {
		return 0
	}
	return rw.now().Sub(rw.lastProgress)
}

// Flush blocks until the queue is empty or the writer fails/closes. When
// it returns nil after a Close that discarded data, Discarded reports
// the loss.
func (rw *RatedWriter) Flush() error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	for rw.backlog > 0 && rw.err == nil && !rw.closed {
		rw.idle.Wait()
	}
	return rw.err
}

// Close stops the drain goroutine after the current chunk. Queued but
// unshipped bytes are discarded and counted in Discarded. If the
// underlying writer may block indefinitely (a dead TCP peer), close it
// first so a wedged in-flight Write unblocks and the drain can exit.
func (rw *RatedWriter) Close() error {
	rw.mu.Lock()
	if rw.closed {
		rw.mu.Unlock()
		return nil
	}
	rw.closed = true
	rw.discarded += int64(rw.backlog)
	rw.queue = nil
	rw.backlog = 0
	rw.work.Broadcast()
	rw.idle.Broadcast()
	rw.mu.Unlock()
	close(rw.stop)
	<-rw.done
	return nil
}

// CloseDrain flushes the queue for up to timeout before closing,
// returning the bytes that had to be discarded anyway (0 after a clean
// drain). It is the lossless-teardown alternative to Close for callers
// detaching a healthy participant.
func (rw *RatedWriter) CloseDrain(timeout time.Duration) (int64, error) {
	rw.mu.Lock()
	if !rw.closed && rw.err == nil && rw.backlog > 0 && timeout > 0 {
		deadline := time.Now().Add(timeout)
		// The timer pokes the idle waiters so the deadline check below
		// re-runs even if the drain makes no progress at all.
		t := time.AfterFunc(timeout, func() {
			rw.mu.Lock()
			rw.idle.Broadcast()
			rw.mu.Unlock()
		})
		for rw.backlog > 0 && rw.err == nil && !rw.closed && time.Now().Before(deadline) {
			rw.idle.Wait()
		}
		t.Stop()
	}
	rw.mu.Unlock()
	err := rw.Close()
	return rw.Discarded(), err
}

func (rw *RatedWriter) drain() {
	defer close(rw.done)
	const chunk = 1400 // ship in MTU-sized pieces for a smooth rate
	for {
		rw.mu.Lock()
		for len(rw.queue) == 0 && !rw.closed {
			rw.work.Wait()
		}
		if rw.closed {
			rw.mu.Unlock()
			return
		}
		buf := rw.queue[0]
		n := min(chunk, len(buf))
		piece := buf[:n]
		rw.writing = true
		rw.mu.Unlock()

		start := time.Now()
		_, err := rw.w.Write(piece)

		rw.mu.Lock()
		rw.writing = false
		if err != nil {
			rw.err = err
			rw.discarded += int64(rw.backlog)
			rw.queue = nil
			rw.backlog = 0
			rw.idle.Broadcast()
			rw.mu.Unlock()
			return
		}
		if rw.closed {
			// Close won the race while this piece was in flight; its
			// accounting already discarded the whole backlog, so only
			// correct for the bytes that did make it out.
			rw.drained += int64(n)
			rw.discarded -= int64(n)
			rw.mu.Unlock()
			return
		}
		if len(buf) == n {
			rw.queue = rw.queue[1:]
		} else {
			rw.queue[0] = buf[n:]
		}
		rw.backlog -= n
		rw.drained += int64(n)
		rw.lastProgress = rw.now()
		rw.idle.Broadcast()
		rate := rw.rate
		rw.mu.Unlock()

		if rate > 0 {
			want := time.Duration(float64(n) / float64(rate) * float64(time.Second))
			if elapsed := time.Since(start); elapsed < want {
				// Interruptible pacing sleep so Close never waits out a
				// long quantum on a slow link.
				timer := time.NewTimer(want - elapsed)
				select {
				case <-timer.C:
				case <-rw.stop:
					timer.Stop()
					return
				}
			}
		}
	}
}
