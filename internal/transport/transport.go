// Package transport provides the network substrates the experiments run
// on: an in-memory datagram link with configurable loss, reordering,
// delay and bandwidth (substituting for Internet paths), a multicast bus
// (substituting for IP multicast), and a rate-limited stream writer that
// exposes its send-queue backlog — the signal the draft's Implementation
// Notes (Section 7) tell an AH to monitor before sending screen data.
//
// Real UDP and TCP over loopback also work with the AH and participant
// (they accept net.Conn / net.PacketConn shaped endpoints); the simulated
// links exist so loss and bandwidth are controlled and reproducible.
package transport

import (
	"errors"
	"io"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: closed")

// PacketConn is a message-oriented, unreliable, unordered channel — the
// shape of a UDP socket.
type PacketConn interface {
	// Send transmits one datagram. It never blocks for the network;
	// datagrams in excess of the link capacity are dropped, as UDP
	// would.
	Send(pkt []byte) error
	// Recv blocks until a datagram arrives or the conn closes (io.EOF).
	Recv() ([]byte, error)
	// Close releases the endpoint.
	Close() error
}

// BatchSender is the optional batched-send fast path of a PacketConn —
// the sendmmsg/writev analogue. SendBatch transmits a run of datagrams
// in one operation (for the simulated endpoint: one lock acquisition and
// one shaper pass for the whole run) and returns how many datagrams were
// accepted. Semantics per datagram are identical to Send; callers that
// find the interface absent fall back to per-packet sends.
type BatchSender interface {
	SendBatch(pkts [][]byte) (int, error)
}

// LinkConfig describes one direction of a simulated path. The zero
// value is a perfect link; each field degrades it independently, and a
// config that sets only the original fields (LossRate, ReorderRate,
// Delay) behaves exactly as it did before the richer impairments were
// added — same seed, same pattern.
type LinkConfig struct {
	// LossRate is the independent drop probability per datagram [0,1).
	LossRate float64
	// ReorderRate is the probability a datagram is held back and
	// delivered after its successor.
	ReorderRate float64
	// Delay is a fixed one-way latency applied to every datagram.
	Delay time.Duration
	// Seed makes the loss/reorder pattern reproducible. Zero seeds from
	// the clock.
	Seed int64
	// QueueLen bounds the receive queue (default 1024); overflow drops.
	QueueLen int

	// Jitter adds a uniform random [0, Jitter) to Delay per datagram.
	// With enough jitter relative to the send spacing, datagrams arrive
	// out of order — a second, latency-driven reordering mechanism on
	// top of ReorderRate.
	Jitter time.Duration
	// DuplicateRate is the probability a datagram is delivered twice.
	DuplicateRate float64
	// Burst, when non-nil, layers a Gilbert–Elliott two-state burst-loss
	// model on top of LossRate.
	Burst *BurstLoss
	// BytesPerSecond, when positive, polices the link to that rate with
	// a token bucket; datagrams beyond the budget are dropped, not
	// queued.
	BytesPerSecond int
	// BurstBytes is the policing bucket depth. Zero means one second's
	// worth of BytesPerSecond.
	BurstBytes int
}

type endpoint struct {
	mu     sync.Mutex
	shaper *Shaper
	cfg    LinkConfig
	peer   *endpoint
	inbox  chan []byte
	held   []byte // reorder hold slot
	closed bool
	// stats
	sent, dropped uint64
}

// Pipe returns two connected PacketConn endpoints. cfgAB shapes the a→b
// direction, cfgBA the b→a direction.
func Pipe(cfgAB, cfgBA LinkConfig) (a, b PacketConn) {
	ea := newEndpoint(cfgAB)
	eb := newEndpoint(cfgBA)
	ea.peer = eb
	eb.peer = ea
	return ea, eb
}

func newEndpoint(cfg LinkConfig) *endpoint {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	return &endpoint{
		shaper: NewShaper(cfg),
		cfg:    cfg,
		inbox:  make(chan []byte, cfg.QueueLen),
	}
}

// Send implements PacketConn. The datagram is copied, so the caller may
// reuse its buffer.
func (e *endpoint) Send(pkt []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.sent++
	v := e.shaper.Shape(time.Now(), len(pkt), e.held == nil)
	if v.Drop {
		e.dropped++
		e.mu.Unlock()
		return nil // silently lost, like UDP
	}
	buf := append([]byte(nil), pkt...)
	var deliverFirst, deliverSecond []byte
	switch {
	case e.held != nil:
		// A previously held datagram goes out after this one.
		deliverFirst, deliverSecond = buf, e.held
		e.held = nil
	case v.Hold:
		e.held = buf
		if v.Duplicate {
			// The duplicate copy is not held; it ships now, so the two
			// copies themselves arrive out of order.
			deliverFirst = append([]byte(nil), buf...)
		}
	default:
		deliverFirst = buf
		if v.Duplicate {
			deliverSecond = append([]byte(nil), buf...)
		}
	}
	delay := v.Delay
	peer := e.peer
	e.mu.Unlock()

	deliver := func() {
		if deliverFirst != nil {
			peer.enqueue(deliverFirst)
		}
		if deliverSecond != nil {
			peer.enqueue(deliverSecond)
		}
	}
	if deliverFirst == nil && deliverSecond == nil {
		return nil
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
	} else {
		deliver()
	}
	return nil
}

// SendBatch implements BatchSender: the whole run is shaped under ONE
// lock acquisition, then delivered outside it in order. Per-datagram
// behavior (loss, reorder holds, duplication, delay) is identical to
// len(pkts) Send calls.
func (e *endpoint) SendBatch(pkts [][]byte) (int, error) {
	type delivery struct {
		delay         time.Duration
		first, second []byte
	}
	var dels []delivery
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	now := time.Now()
	for _, pkt := range pkts {
		e.sent++
		v := e.shaper.Shape(now, len(pkt), e.held == nil)
		if v.Drop {
			e.dropped++
			continue
		}
		buf := append([]byte(nil), pkt...)
		var deliverFirst, deliverSecond []byte
		switch {
		case e.held != nil:
			deliverFirst, deliverSecond = buf, e.held
			e.held = nil
		case v.Hold:
			e.held = buf
			if v.Duplicate {
				deliverFirst = append([]byte(nil), buf...)
			}
		default:
			deliverFirst = buf
			if v.Duplicate {
				deliverSecond = append([]byte(nil), buf...)
			}
		}
		if deliverFirst != nil || deliverSecond != nil {
			dels = append(dels, delivery{delay: v.Delay, first: deliverFirst, second: deliverSecond})
		}
	}
	peer := e.peer
	e.mu.Unlock()

	for _, d := range dels {
		d := d
		deliver := func() {
			if d.first != nil {
				peer.enqueue(d.first)
			}
			if d.second != nil {
				peer.enqueue(d.second)
			}
		}
		if d.delay > 0 {
			time.AfterFunc(d.delay, deliver)
		} else {
			deliver()
		}
	}
	return len(pkts), nil
}

func (e *endpoint) enqueue(pkt []byte) {
	// The non-blocking send happens under the lock so it cannot race
	// with Close closing the channel.
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	select {
	case e.inbox <- pkt:
	default:
		e.dropped++
	}
}

// Recv implements PacketConn.
func (e *endpoint) Recv() ([]byte, error) {
	pkt, ok := <-e.inbox
	if !ok {
		return nil, io.EOF
	}
	return pkt, nil
}

// Close implements PacketConn. Closing an endpoint unblocks its readers;
// the peer remains usable for draining.
func (e *endpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	// Flush any held reorder slot to the peer before closing.
	if e.held != nil {
		held := e.held
		e.held = nil
		go e.peer.enqueue(held)
	}
	close(e.inbox)
	return nil
}

// Stats reports datagrams sent and dropped by this endpoint's shaping.
func (e *endpoint) Stats() (sent, dropped uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sent, e.dropped
}
