package transport

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func TestPipeDelivery(t *testing.T) {
	a, b := Pipe(LinkConfig{Seed: 1}, LinkConfig{Seed: 2})
	defer a.Close()
	defer b.Close()
	if err := a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	pkt, err := b.Recv()
	if err != nil || string(pkt) != "hello" {
		t.Fatalf("recv = %q, %v", pkt, err)
	}
	// Reverse direction.
	if err := b.Send([]byte("world")); err != nil {
		t.Fatal(err)
	}
	pkt, err = a.Recv()
	if err != nil || string(pkt) != "world" {
		t.Fatalf("recv = %q, %v", pkt, err)
	}
}

func TestPipeCopiesBuffers(t *testing.T) {
	a, b := Pipe(LinkConfig{Seed: 1}, LinkConfig{Seed: 2})
	defer a.Close()
	defer b.Close()
	buf := []byte("abc")
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // mutate after send
	pkt, err := b.Recv()
	if err != nil || string(pkt) != "abc" {
		t.Fatalf("recv = %q, want untouched copy", pkt)
	}
}

func TestPipeLoss(t *testing.T) {
	a, b := Pipe(LinkConfig{LossRate: 0.5, Seed: 42, QueueLen: 2048}, LinkConfig{Seed: 2})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Delivery is synchronous without Delay; close the receiver and
	// drain its buffered datagrams to EOF.
	b.Close()
	received := 0
	for {
		if _, err := b.Recv(); err != nil {
			break
		}
		received++
	}
	if received < 350 || received > 650 {
		t.Fatalf("received %d of %d at 50%% loss", received, n)
	}
	sent, dropped := a.(*endpoint).Stats()
	if sent != n || dropped != uint64(n-received) {
		t.Fatalf("stats = %d sent, %d dropped, received %d", sent, dropped, received)
	}
	a.Close()
}

func TestPipeReorder(t *testing.T) {
	a, b := Pipe(LinkConfig{ReorderRate: 0.3, Seed: 7}, LinkConfig{Seed: 2})
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	a.Close() // flush any held reorder slot to the peer
	time.Sleep(10 * time.Millisecond)
	b.Close()
	var got []byte
	for {
		pkt, err := b.Recv()
		if err != nil {
			break
		}
		got = append(got, pkt[0])
	}
	if len(got) != n {
		t.Fatalf("received %d, want %d (reorder must not lose)", len(got), n)
	}
	inOrder := true
	seen := make(map[byte]bool)
	for i, v := range got {
		if i > 0 && v < got[i-1] && got[i-1]-v < 128 {
			inOrder = false
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if inOrder {
		t.Fatal("30% reorder produced fully ordered stream")
	}
}

func TestPipeDelay(t *testing.T) {
	a, b := Pipe(LinkConfig{Delay: 30 * time.Millisecond, Seed: 1}, LinkConfig{Seed: 2})
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if err := a.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms", elapsed)
	}
}

func TestPipeCloseSemantics(t *testing.T) {
	a, b := Pipe(LinkConfig{Seed: 1}, LinkConfig{Seed: 2})
	b.Close()
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("recv on closed = %v, want io.EOF", err)
	}
	if err := b.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send on closed = %v, want ErrClosed", err)
	}
	// Sending to a closed peer silently drops.
	if err := a.Send([]byte("x")); err != nil {
		t.Fatalf("send to closed peer = %v", err)
	}
	a.Close()
}

func TestBusFanout(t *testing.T) {
	bus := NewBus()
	s1 := bus.Subscribe(LinkConfig{Seed: 1})
	s2 := bus.Subscribe(LinkConfig{Seed: 2})
	if bus.Subscribers() != 2 {
		t.Fatalf("subscribers = %d", bus.Subscribers())
	}
	bus.Publish([]byte("update"))
	for i, s := range []PacketConn{s1, s2} {
		pkt, err := s.Recv()
		if err != nil || string(pkt) != "update" {
			t.Fatalf("sub %d: %q, %v", i, pkt, err)
		}
	}
	// Unsubscribe removes from fanout.
	s2.Close()
	if bus.Subscribers() != 1 {
		t.Fatalf("subscribers after close = %d", bus.Subscribers())
	}
	bus.Publish([]byte("again"))
	if pkt, err := s1.Recv(); err != nil || string(pkt) != "again" {
		t.Fatalf("s1 after unsubscribe: %q, %v", pkt, err)
	}
	// Subscribers cannot send to the group.
	if err := s1.Send([]byte("x")); err == nil {
		t.Fatal("subscriber send should fail")
	}
}

func TestBusPerSubscriberLoss(t *testing.T) {
	bus := NewBus()
	clean := bus.Subscribe(LinkConfig{Seed: 3})
	lossy := bus.Subscribe(LinkConfig{LossRate: 0.9, Seed: 4})
	const n = 200
	for i := 0; i < n; i++ {
		bus.Publish([]byte{byte(i)})
	}
	cleanCount, lossyCount := 0, 0
	for i := 0; i < n; i++ {
		if _, err := clean.Recv(); err != nil {
			t.Fatalf("clean recv %d: %v", i, err)
		}
		cleanCount++
	}
	// Delivery is synchronous (no Delay configured), so closing now and
	// draining to EOF counts everything the lossy link let through.
	lossy.Close()
	for {
		if _, err := lossy.Recv(); err != nil {
			break
		}
		lossyCount++
	}
	if cleanCount != n {
		t.Fatalf("clean subscriber got %d/%d", cleanCount, n)
	}
	if lossyCount > n/2 {
		t.Fatalf("lossy subscriber got %d/%d at 90%% loss", lossyCount, n)
	}
}

func TestRatedWriterBacklogAndFlush(t *testing.T) {
	var out bytes.Buffer
	var mu sync.Mutex
	sync1 := &lockedWriter{w: &out, mu: &mu}
	rw := NewRatedWriter(sync1, 100_000) // 100 KB/s
	defer rw.Close()

	payload := bytes.Repeat([]byte{7}, 10_000) // 100ms worth
	if _, err := rw.Write(payload); err != nil {
		t.Fatal(err)
	}
	// Immediately after write there should be measurable backlog.
	if rw.Backlog() == 0 {
		t.Fatal("expected nonzero backlog right after write")
	}
	start := time.Now()
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if rw.Backlog() != 0 {
		t.Fatal("backlog after flush")
	}
	mu.Lock()
	n := out.Len()
	mu.Unlock()
	if n != len(payload) {
		t.Fatalf("shipped %d bytes, want %d", n, len(payload))
	}
	// 10 KB at 100 KB/s is ~100ms; accept generous bounds.
	if elapsed < 50*time.Millisecond {
		t.Fatalf("drained too fast for the rate: %v", elapsed)
	}
}

func TestRatedWriterUnlimited(t *testing.T) {
	var out bytes.Buffer
	var mu sync.Mutex
	rw := NewRatedWriter(&lockedWriter{w: &out, mu: &mu}, 0)
	defer rw.Close()
	if _, err := rw.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if out.String() != "abc" {
		t.Fatalf("out = %q", out.String())
	}
}

func TestRatedWriterErrorPropagates(t *testing.T) {
	rw := NewRatedWriter(failingWriter{}, 0)
	defer rw.Close()
	if _, err := rw.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := rw.Flush(); err == nil {
		t.Fatal("flush should report the sink error")
	}
	if _, err := rw.Write([]byte("more")); err == nil {
		t.Fatal("write after sink error should fail")
	}
}

func TestRatedWriterCloseDiscards(t *testing.T) {
	var out bytes.Buffer
	var mu sync.Mutex
	rw := NewRatedWriter(&lockedWriter{w: &out, mu: &mu}, 10) // 10 B/s: glacial
	if _, err := rw.Write(bytes.Repeat([]byte{1}, 10_000)); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Write([]byte("x")); err != ErrClosed {
		t.Fatalf("write after close = %v", err)
	}
}

type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
