package transport

import (
	"io"
	"testing"
	"time"
)

// TestLinkLossRateExtremes pins the boundary behavior of LossRate:
// exactly 0 must be perfectly lossless, and 0.999 must still be a
// functioning link (statistically near-total loss, never an error).
func TestLinkLossRateExtremes(t *testing.T) {
	cases := []struct {
		name        string
		rate        float64
		n           int
		minReceived int
		maxReceived int
	}{
		{"zero is lossless", 0, 500, 500, 500},
		{"near-total loss", 0.999, 2000, 0, 50},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := Pipe(LinkConfig{LossRate: tc.rate, Seed: 11, QueueLen: 4096}, LinkConfig{Seed: 2})
			for i := 0; i < tc.n; i++ {
				if err := a.Send([]byte{byte(i), byte(i >> 8)}); err != nil {
					t.Fatal(err)
				}
			}
			b.Close()
			received := 0
			for {
				if _, err := b.Recv(); err != nil {
					break
				}
				received++
			}
			if received < tc.minReceived || received > tc.maxReceived {
				t.Fatalf("received %d of %d at loss %v, want in [%d, %d]",
					received, tc.n, tc.rate, tc.minReceived, tc.maxReceived)
			}
			sent, dropped := a.(*endpoint).Stats()
			if sent != uint64(tc.n) || dropped != uint64(tc.n-received) {
				t.Fatalf("stats = %d sent, %d dropped, received %d", sent, dropped, received)
			}
			a.Close()
		})
	}
}

// TestLinkDelayOnClosingEndpoint covers both shutdown races of a
// delayed link: a datagram in flight when its *sender* closes must
// still land (the wire does not recall packets), and one in flight
// when its *receiver* closes must vanish silently without panicking
// on the closed inbox.
func TestLinkDelayOnClosingEndpoint(t *testing.T) {
	// Sender closes with the datagram still "on the wire".
	a, b := Pipe(LinkConfig{Delay: 20 * time.Millisecond, Seed: 1}, LinkConfig{Seed: 2})
	if err := a.Send([]byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	pkt, err := b.Recv()
	if err != nil || string(pkt) != "in-flight" {
		t.Fatalf("delayed datagram after sender close = %q, %v", pkt, err)
	}
	b.Close()

	// Receiver closes before the delivery timer fires.
	c, d := Pipe(LinkConfig{Delay: 15 * time.Millisecond, Seed: 3}, LinkConfig{Seed: 4})
	if err := c.Send([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := d.Recv(); err != io.EOF {
		t.Fatalf("recv on closed receiver = %v, want io.EOF", err)
	}
	// Let the timer fire against the closed endpoint; enqueue must be a
	// clean no-op (no panic, no error surfaced anywhere).
	time.Sleep(30 * time.Millisecond)
	c.Close()
}

// TestLinkReorderSingleInFlight: with only one datagram ever sent, the
// reorder slot has no successor to swap with — the datagram parks in
// the held slot and MUST still be delivered exactly once when the
// sender closes (Close flushes the slot). Reordering may delay, never
// lose.
func TestLinkReorderSingleInFlight(t *testing.T) {
	a, b := Pipe(LinkConfig{ReorderRate: 1.0, Seed: 5}, LinkConfig{Seed: 6})
	if err := a.Send([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	// The datagram is parked, not delivered: the receiver sees nothing.
	select {
	case pkt := <-b.(*endpoint).inbox:
		t.Fatalf("held datagram %q delivered with no successor", pkt)
	case <-time.After(20 * time.Millisecond):
	}
	a.Close() // flushes the held slot (asynchronously)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(b.(*endpoint).inbox) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	var got [][]byte
	for {
		pkt, err := b.Recv()
		if err != nil {
			break
		}
		got = append(got, pkt)
	}
	if len(got) != 1 || string(got[0]) != "solo" {
		t.Fatalf("received %q, want exactly one %q", got, "solo")
	}
}

// TestShaperBurstLoss exercises the Gilbert–Elliott model: losses must
// occur, be attributed to LossDropped, and arrive in bursts (mean run
// length well above the independent-loss expectation).
func TestShaperBurstLoss(t *testing.T) {
	s := NewShaper(LinkConfig{Seed: 21, Burst: &BurstLoss{
		PEnterBad: 0.05, PExitBad: 0.2, LossGood: 0, LossBad: 1.0,
	}})
	now := time.Unix(0, 0)
	const n = 5000
	var runs, runLen, cur int
	for i := 0; i < n; i++ {
		if s.Shape(now, 100, false).Drop {
			cur++
		} else if cur > 0 {
			runs++
			runLen += cur
			cur = 0
		}
	}
	st := s.Stats()
	if st.Offered != n || st.Dropped != st.LossDropped || st.Dropped == 0 {
		t.Fatalf("stats = %+v, want all drops attributed to loss", st)
	}
	if runs == 0 {
		t.Fatal("no completed loss bursts in 5000 datagrams")
	}
	// With PExitBad=0.2 and LossBad=1 the expected burst length is ~5;
	// independent loss at the same average rate would give ~1.3.
	if mean := float64(runLen) / float64(runs); mean < 2.5 {
		t.Fatalf("mean burst length %.2f, want >= 2.5 (losses not bursty)", mean)
	}
}

// TestShaperDuplication: DuplicateRate 1 duplicates every datagram and
// counts it.
func TestShaperDuplication(t *testing.T) {
	s := NewShaper(LinkConfig{Seed: 22, DuplicateRate: 1.0})
	now := time.Unix(0, 0)
	for i := 0; i < 50; i++ {
		if v := s.Shape(now, 10, false); !v.Duplicate || v.Drop {
			t.Fatalf("shape %d = %+v, want Duplicate without Drop", i, v)
		}
	}
	if st := s.Stats(); st.Duplicated != 50 {
		t.Fatalf("Duplicated = %d, want 50", st.Duplicated)
	}
}

// TestShaperRatePolice: the token bucket admits BurstBytes at an
// instant, polices the excess, and refills with virtual time.
func TestShaperRatePolice(t *testing.T) {
	s := NewShaper(LinkConfig{Seed: 23, BytesPerSecond: 1000, BurstBytes: 1000})
	now := time.Unix(50, 0)
	if v := s.Shape(now, 500, false); v.Drop {
		t.Fatal("first 500B dropped with a full 1000B bucket")
	}
	if v := s.Shape(now, 500, false); v.Drop {
		t.Fatal("second 500B dropped with 500B left in the bucket")
	}
	if v := s.Shape(now, 500, false); !v.Drop {
		t.Fatal("third 500B admitted by an empty bucket")
	}
	if st := s.Stats(); st.RateDropped != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want exactly one rate drop", st)
	}
	// One virtual second refills the bucket.
	if v := s.Shape(now.Add(time.Second), 900, false); v.Drop {
		t.Fatal("900B dropped after a full second of refill")
	}
}

// TestShaperPartition: SetDown black-holes everything and attributes
// the drops; healing restores delivery.
func TestShaperPartition(t *testing.T) {
	s := NewShaper(LinkConfig{Seed: 24})
	now := time.Unix(0, 0)
	s.SetDown(true)
	if !s.Down() {
		t.Fatal("Down() = false after SetDown(true)")
	}
	for i := 0; i < 10; i++ {
		if v := s.Shape(now, 10, false); !v.Drop {
			t.Fatal("datagram survived a partitioned link")
		}
	}
	s.SetDown(false)
	if v := s.Shape(now, 10, false); v.Drop {
		t.Fatal("datagram dropped after heal")
	}
	if st := s.Stats(); st.DownDropped != 10 || st.Dropped != 10 {
		t.Fatalf("stats = %+v, want 10 partition drops", st)
	}
}

// TestShaperJitterBounds: per-datagram delay is Delay + [0, Jitter),
// and actually varies.
func TestShaperJitterBounds(t *testing.T) {
	base, jitter := 10*time.Millisecond, 20*time.Millisecond
	s := NewShaper(LinkConfig{Seed: 25, Delay: base, Jitter: jitter})
	now := time.Unix(0, 0)
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		v := s.Shape(now, 10, false)
		if v.Delay < base || v.Delay >= base+jitter {
			t.Fatalf("delay %v outside [%v, %v)", v.Delay, base, base+jitter)
		}
		seen[v.Delay] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced a constant delay")
	}
}

// TestShaperSeedReplay: two shapers with identical config and seed make
// identical decision sequences — the property netsim's determinism
// rests on.
func TestShaperSeedReplay(t *testing.T) {
	cfg := LinkConfig{
		Seed: 77, LossRate: 0.2, DuplicateRate: 0.1, ReorderRate: 0.15,
		Delay: time.Millisecond, Jitter: 5 * time.Millisecond,
		Burst: &BurstLoss{PEnterBad: 0.1, PExitBad: 0.3, LossBad: 0.8},
	}
	s1, s2 := NewShaper(cfg), NewShaper(cfg)
	now := time.Unix(0, 0)
	for i := 0; i < 2000; i++ {
		canHold := i%3 != 0
		v1 := s1.Shape(now, 64, canHold)
		v2 := s2.Shape(now, 64, canHold)
		if v1 != v2 {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, v1, v2)
		}
	}
	if s1.Stats() != s2.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", s1.Stats(), s2.Stats())
	}
}
