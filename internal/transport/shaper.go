package transport

import (
	"math/rand"
	"time"
)

// BurstLoss parameterizes a two-state Gilbert–Elliott loss model: the
// link alternates between a good state (losing LossGood of datagrams)
// and a bad state (losing LossBad), with per-datagram transition
// probabilities. Bursty loss is where repair protocols actually break —
// independent per-packet loss (LinkConfig.LossRate alone) spreads
// losses thinly enough that a single NACK round usually heals them,
// while a burst wipes out whole fragment trains and the retransmissions
// that follow.
type BurstLoss struct {
	// PEnterBad is the per-datagram probability of moving good → bad.
	PEnterBad float64
	// PExitBad is the per-datagram probability of moving bad → good.
	PExitBad float64
	// LossGood is the drop probability while in the good state
	// (usually 0).
	LossGood float64
	// LossBad is the drop probability while in the bad state (e.g. 0.9).
	LossBad float64
}

// Verdict is the Shaper's decision for one datagram.
type Verdict struct {
	// Drop discards the datagram (loss, policing, or partition).
	Drop bool
	// Duplicate delivers the datagram twice.
	Duplicate bool
	// Hold parks the datagram in the reorder slot: it ships after its
	// successor. Only set when the caller reported it can hold.
	Hold bool
	// Delay is the total one-way latency for this datagram: the fixed
	// LinkConfig.Delay plus a uniform random jitter in [0, Jitter).
	Delay time.Duration
}

// Shaper makes the per-datagram shaping decisions for one direction of
// a link: loss (uniform and Gilbert–Elliott burst), duplication,
// reordering, rate policing, jitter and administrative partition. It is
// the single seeded random source for a link, shared by the real-time
// endpoints in this package and the virtual-time links of
// internal/netsim, so a scenario replays identically from its seed.
//
// Shaper is not safe for concurrent use; callers serialize (the
// endpoint holds its mutex, netsim is single-threaded).
type Shaper struct {
	cfg LinkConfig
	rng *rand.Rand
	bad bool // Gilbert–Elliott state

	// Rate-policing token bucket (LinkConfig.BytesPerSecond).
	tokens     float64
	lastRefill time.Time

	down bool

	stats ShaperStats
}

// ShaperStats counts the Shaper's decisions.
type ShaperStats struct {
	// Offered is the number of datagrams presented to Shape.
	Offered uint64
	// Dropped is the total discarded for any reason; the remaining
	// fields break it down.
	Dropped uint64
	// LossDropped were lost to the uniform or burst loss model.
	LossDropped uint64
	// RateDropped were policed away by the BytesPerSecond budget.
	RateDropped uint64
	// DownDropped were black-holed while the link was down.
	DownDropped uint64
	// Duplicated is the number of datagrams delivered twice.
	Duplicated uint64
	// Held is the number of datagrams parked for reordering.
	Held uint64
}

// NewShaper returns a Shaper for one link direction. A zero cfg.Seed
// seeds from the clock (matching Pipe's behavior); pass an explicit
// seed for reproducible patterns.
func NewShaper(cfg LinkConfig) *Shaper {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Shaper{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// SetDown administratively partitions (true) or heals (false) the link:
// while down, every datagram is dropped.
func (s *Shaper) SetDown(down bool) { s.down = down }

// Down reports whether the link is administratively partitioned.
func (s *Shaper) Down() bool { return s.down }

// Stats returns a copy of the decision counters.
func (s *Shaper) Stats() ShaperStats { return s.stats }

// Shape decides the fate of one datagram of the given size at the given
// instant. canHold reports whether the caller has a free reorder slot.
//
// The random draws happen in a fixed, documented order — burst-state
// transition, loss, duplication, reorder, jitter — and a draw is only
// consumed when its feature is configured, so a config using just the
// original fields (LossRate/ReorderRate/Delay) consumes the RNG exactly
// as the pre-burst-model implementation did and old seeds reproduce old
// patterns.
func (s *Shaper) Shape(now time.Time, size int, canHold bool) Verdict {
	s.stats.Offered++
	v := Verdict{Delay: s.cfg.Delay}

	if s.down {
		s.stats.Dropped++
		s.stats.DownDropped++
		v.Drop = true
		return v
	}

	// Rate policing: a token bucket of BytesPerSecond with a depth of
	// one second's worth of bytes (or BurstBytes when set). Like a
	// router's policer, excess datagrams are dropped, not queued.
	if s.cfg.BytesPerSecond > 0 {
		depth := float64(s.cfg.BytesPerSecond)
		if s.cfg.BurstBytes > 0 {
			depth = float64(s.cfg.BurstBytes)
		}
		if s.lastRefill.IsZero() {
			s.tokens = depth
		} else {
			s.tokens += now.Sub(s.lastRefill).Seconds() * float64(s.cfg.BytesPerSecond)
			if s.tokens > depth {
				s.tokens = depth
			}
		}
		s.lastRefill = now
		if s.tokens < float64(size) {
			s.stats.Dropped++
			s.stats.RateDropped++
			v.Drop = true
			return v
		}
		s.tokens -= float64(size)
	}

	// Loss: Gilbert–Elliott state machine composed with the independent
	// LossRate (a datagram is lost if either model says so).
	loss := s.cfg.LossRate
	if b := s.cfg.Burst; b != nil {
		if s.bad {
			if s.rng.Float64() < b.PExitBad {
				s.bad = false
			}
		} else {
			if s.rng.Float64() < b.PEnterBad {
				s.bad = true
			}
		}
		stateLoss := b.LossGood
		if s.bad {
			stateLoss = b.LossBad
		}
		// P(kept) = P(kept by uniform) * P(kept by burst state).
		loss = 1 - (1-loss)*(1-stateLoss)
	}
	if loss > 0 && s.rng.Float64() < loss {
		s.stats.Dropped++
		s.stats.LossDropped++
		v.Drop = true
		return v
	}

	if s.cfg.DuplicateRate > 0 && s.rng.Float64() < s.cfg.DuplicateRate {
		s.stats.Duplicated++
		v.Duplicate = true
	}

	if canHold && s.cfg.ReorderRate > 0 && s.rng.Float64() < s.cfg.ReorderRate {
		s.stats.Held++
		v.Hold = true
		return v
	}

	if s.cfg.Jitter > 0 {
		v.Delay += time.Duration(s.rng.Int63n(int64(s.cfg.Jitter)))
	}
	return v
}
