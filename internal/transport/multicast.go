package transport

import (
	"io"
	"sync"
)

// Bus simulates an IP multicast group: one Publish fans a datagram out to
// every subscriber, each behind its own (optionally lossy) link. The
// draft's AH "can share an application to TCP participants, UDP
// participants, and several multicast addresses in the same sharing
// session" (Section 4.2); the Bus stands in for each multicast address.
type Bus struct {
	mu   sync.Mutex
	subs []*busSub
}

// NewBus returns an empty multicast bus.
func NewBus() *Bus { return &Bus{} }

type busSub struct {
	bus *Bus
	ep  *endpoint
}

// Subscribe adds a receiver behind a link with the given shaping and
// returns its receive endpoint.
func (b *Bus) Subscribe(cfg LinkConfig) PacketConn {
	b.mu.Lock()
	defer b.mu.Unlock()
	// The subscriber's endpoint acts as the sending side of a one-way
	// pipe whose receiving side is itself: Publish calls sub.ep.Send,
	// which applies shaping and enqueues into the same endpoint's inbox.
	ep := newEndpoint(cfg)
	ep.peer = ep
	s := &busSub{bus: b, ep: ep}
	b.subs = append(b.subs, s)
	return s
}

// Publish fans the datagram out to all subscribers. Each subscriber's
// link applies its own loss/reorder/delay independently.
func (b *Bus) Publish(pkt []byte) {
	b.mu.Lock()
	subs := make([]*busSub, len(b.subs))
	copy(subs, b.subs)
	b.mu.Unlock()
	for _, s := range subs {
		_ = s.ep.Send(pkt) // Send on a closed subscriber is a no-op drop
	}
}

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Send implements PacketConn: subscribers may not send to the group
// (participant feedback travels over unicast RTCP in the draft).
func (s *busSub) Send([]byte) error { return ErrClosed }

// Recv implements PacketConn.
func (s *busSub) Recv() ([]byte, error) {
	pkt, ok := <-s.ep.inbox
	if !ok {
		return nil, io.EOF
	}
	return pkt, nil
}

// Close implements PacketConn and removes the subscriber from the bus.
func (s *busSub) Close() error {
	s.bus.mu.Lock()
	for i, sub := range s.bus.subs {
		if sub == s {
			s.bus.subs = append(s.bus.subs[:i], s.bus.subs[i+1:]...)
			break
		}
	}
	s.bus.mu.Unlock()
	return s.ep.Close()
}

// Stats reports datagrams offered to and dropped by the subscriber link.
func (s *busSub) Stats() (sent, dropped uint64) { return s.ep.Stats() }
