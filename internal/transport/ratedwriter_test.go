package transport

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

// blockingWriter blocks every Write until released — a peer that has
// stopped reading.
type blockingWriter struct {
	release chan struct{}
	mu      sync.Mutex
	n       int
}

func (b *blockingWriter) Write(p []byte) (int, error) {
	<-b.release
	b.mu.Lock()
	b.n += len(p)
	b.mu.Unlock()
	return len(p), nil
}

// TestLivenessRatedWriterDiscardOnClose: Close must account for every
// queued byte it throws away instead of silently dropping them.
func TestLivenessRatedWriterDiscardOnClose(t *testing.T) {
	rw := NewRatedWriter(io.Discard, 1000) // 1 KB/s: most of the burst stays queued
	const total = 10_000
	if _, err := rw.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	drained, discarded := rw.Drained(), rw.Discarded()
	if discarded == 0 {
		t.Fatal("Close dropped queued bytes without reporting them")
	}
	if drained+discarded != total {
		t.Fatalf("drained %d + discarded %d != written %d", drained, discarded, total)
	}
	if rw.Backlog() != 0 {
		t.Fatalf("backlog %d after Close, want 0", rw.Backlog())
	}
}

// TestLivenessRatedWriterCloseDrainClean: an unconstrained writer drains
// fully, so CloseDrain loses nothing.
func TestLivenessRatedWriterCloseDrainClean(t *testing.T) {
	var buf bytes.Buffer
	rw := NewRatedWriter(&buf, 0)
	const total = 5_000
	if _, err := rw.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	discarded, err := rw.CloseDrain(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if discarded != 0 {
		t.Fatalf("clean drain discarded %d bytes", discarded)
	}
	if buf.Len() != total {
		t.Fatalf("underlying writer got %d bytes, want %d", buf.Len(), total)
	}
	if rw.Drained() != total {
		t.Fatalf("Drained() = %d, want %d", rw.Drained(), total)
	}
}

// TestLivenessRatedWriterCloseDrainTimeout: when the link can't drain in
// time, CloseDrain gives up promptly and reports the loss.
func TestLivenessRatedWriterCloseDrainTimeout(t *testing.T) {
	rw := NewRatedWriter(io.Discard, 1000)
	const total = 50_000
	if _, err := rw.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	discarded, err := rw.CloseDrain(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("CloseDrain blocked %v past its 50ms budget", waited)
	}
	if discarded == 0 {
		t.Fatal("timed-out CloseDrain reported a clean drain")
	}
	if rw.Drained()+discarded != total {
		t.Fatalf("drained %d + discarded %d != written %d", rw.Drained(), discarded, total)
	}
}

// TestLivenessRatedWriterStallDuration: a wedged peer shows up as a
// growing stall, and the signal resets once the drain moves again.
func TestLivenessRatedWriterStallDuration(t *testing.T) {
	bw := &blockingWriter{release: make(chan struct{})}
	rw := NewRatedWriter(bw, 0)
	if _, err := rw.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if stall := rw.StallDuration(); stall < 40*time.Millisecond {
		t.Fatalf("StallDuration = %v while peer wedged, want >= 40ms", stall)
	}
	close(bw.release)
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	if stall := rw.StallDuration(); stall != 0 {
		t.Fatalf("StallDuration = %v after drain, want 0", stall)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if rw.Discarded() != 0 {
		t.Fatalf("Discarded = %d after full drain", rw.Discarded())
	}
}

// TestLivenessRatedWriterWakeStorm: concurrent writers and flushers must
// all complete — a missed condition-variable wakeup (the bug class the
// split work/idle conds eliminate) would deadlock this test.
func TestLivenessRatedWriterWakeStorm(t *testing.T) {
	rw := NewRatedWriter(io.Discard, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if _, err := rw.Write(make([]byte, 512)); err != nil {
					return // closed under us: fine
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = rw.Flush()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("write/flush storm deadlocked")
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	if rw.Backlog() != 0 {
		t.Fatal("backlog nonzero after final flush")
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
}
