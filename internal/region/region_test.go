package region

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := XYWH(220, 150, 350, 450) // Window A from draft Figure 2.
	if r.Right() != 570 || r.Bottom() != 600 {
		t.Fatalf("Right/Bottom = %d/%d, want 570/600", r.Right(), r.Bottom())
	}
	if r.Empty() {
		t.Fatal("window A should not be empty")
	}
	if got := r.Area(); got != 350*450 {
		t.Fatalf("Area = %d, want %d", got, 350*450)
	}
	if !r.Contains(220, 150) {
		t.Error("should contain its top-left corner")
	}
	if r.Contains(570, 600) {
		t.Error("should not contain its exclusive bottom-right corner")
	}
}

func TestRectIntersect(t *testing.T) {
	// Windows A and B from Figure 2 overlap.
	a := XYWH(220, 150, 350, 450)
	b := XYWH(450, 400, 350, 300)
	is := a.Intersect(b)
	want := XYWH(450, 400, 120, 200)
	if is != want {
		t.Fatalf("Intersect = %v, want %v", is, want)
	}
	// Windows A and C do not overlap.
	c := XYWH(850, 320, 160, 150)
	if !a.Intersect(c).Empty() {
		t.Fatalf("A and C should not intersect, got %v", a.Intersect(c))
	}
	if a.Overlaps(c) {
		t.Error("Overlaps(A, C) should be false")
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps(A, B) should be true")
	}
}

func TestRectUnion(t *testing.T) {
	a := XYWH(0, 0, 10, 10)
	b := XYWH(20, 20, 5, 5)
	u := a.Union(b)
	if u != XYWH(0, 0, 25, 25) {
		t.Fatalf("Union = %v", u)
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("Union with empty = %v, want %v", got, a)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Fatalf("empty Union b = %v, want %v", got, b)
	}
}

func TestSubtractDisjointAndCover(t *testing.T) {
	r := XYWH(0, 0, 10, 10)
	if got := r.Subtract(XYWH(50, 50, 5, 5)); len(got) != 1 || got[0] != r {
		t.Fatalf("Subtract disjoint = %v, want [%v]", got, r)
	}
	if got := r.Subtract(XYWH(-5, -5, 30, 30)); got != nil {
		t.Fatalf("Subtract cover = %v, want nil", got)
	}
}

func TestSubtractProperties(t *testing.T) {
	// For random rects: pieces are disjoint, don't overlap s, and their
	// area plus intersect area equals r's area.
	cfg := &quick.Config{MaxCount: 500}
	f := func(rl, rt, sl, st int8, rw, rh, sw, sh uint8) bool {
		r := XYWH(int(rl), int(rt), int(rw), int(rh))
		s := XYWH(int(sl), int(st), int(sw), int(sh))
		pieces := r.Subtract(s)
		area := 0
		for i, p := range pieces {
			if p.Empty() {
				return false
			}
			if !r.ContainsRect(p) {
				return false
			}
			if p.Overlaps(s) {
				return false
			}
			for j := i + 1; j < len(pieces); j++ {
				if p.Overlaps(pieces[j]) {
					return false
				}
			}
			area += p.Area()
		}
		return area+r.Intersect(s).Area() == r.Area()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTiles(t *testing.T) {
	r := XYWH(10, 20, 100, 50)
	tiles := r.Tiles(32, 32)
	// 100/32 -> 4 columns, 50/32 -> 2 rows.
	if len(tiles) != 8 {
		t.Fatalf("len(tiles) = %d, want 8", len(tiles))
	}
	area := 0
	for i, a := range tiles {
		if !r.ContainsRect(a) {
			t.Fatalf("tile %v outside %v", a, r)
		}
		area += a.Area()
		for j := i + 1; j < len(tiles); j++ {
			if a.Overlaps(tiles[j]) {
				t.Fatalf("tiles %v and %v overlap", a, tiles[j])
			}
		}
	}
	if area != r.Area() {
		t.Fatalf("tile area = %d, want %d", area, r.Area())
	}
}

func TestTilesPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Tiles(0, 0) should panic")
		}
	}()
	XYWH(0, 0, 10, 10).Tiles(0, 0)
}

func TestSetAddKeepsDisjoint(t *testing.T) {
	s := NewSet()
	s.Add(XYWH(0, 0, 10, 10))
	s.Add(XYWH(5, 5, 10, 10)) // overlaps the first
	if got, want := s.Area(), 10*10+10*10-5*5; got != want {
		t.Fatalf("Area = %d, want %d", got, want)
	}
	rects := s.Rects()
	for i, a := range rects {
		for j := i + 1; j < len(rects); j++ {
			if a.Overlaps(rects[j]) {
				t.Fatalf("set rects %v and %v overlap", a, rects[j])
			}
		}
	}
}

func TestSetAddEmptyIgnored(t *testing.T) {
	s := NewSet()
	s.Add(Rect{})
	s.Add(XYWH(3, 3, 0, 5))
	s.Add(XYWH(3, 3, -4, 5))
	if !s.Empty() {
		t.Fatalf("set should stay empty, got %v", s.Rects())
	}
}

func TestSetSubtract(t *testing.T) {
	s := NewSet()
	s.Add(XYWH(0, 0, 20, 20))
	s.Subtract(XYWH(0, 0, 20, 10))
	if got, want := s.Area(), 20*10; got != want {
		t.Fatalf("Area = %d, want %d", got, want)
	}
	if s.Contains(5, 5) {
		t.Error("subtracted area should not be contained")
	}
	if !s.Contains(5, 15) {
		t.Error("remaining area should be contained")
	}
}

func TestSetIntersect(t *testing.T) {
	s := NewSet()
	s.Add(XYWH(0, 0, 100, 100))
	s.Intersect(XYWH(50, 50, 100, 100))
	if got, want := s.Area(), 50*50; got != want {
		t.Fatalf("Area = %d, want %d", got, want)
	}
}

func TestSetBounds(t *testing.T) {
	s := NewSet()
	if !s.Bounds().Empty() {
		t.Fatal("empty set bounds should be empty")
	}
	s.Add(XYWH(10, 10, 5, 5))
	s.Add(XYWH(100, 200, 5, 5))
	if got, want := s.Bounds(), XYWH(10, 10, 95, 195); got != want {
		t.Fatalf("Bounds = %v, want %v", got, want)
	}
}

func TestCoalesceAdjacent(t *testing.T) {
	s := NewSet()
	s.Add(XYWH(0, 0, 10, 10))
	s.Add(XYWH(10, 0, 10, 10)) // perfectly adjacent
	out := s.Coalesce(0)
	if len(out) != 1 || out[0] != XYWH(0, 0, 20, 10) {
		t.Fatalf("Coalesce(0) = %v, want [(0,0 20x10)]", out)
	}
}

func TestCoalesceRespectsWasteBudget(t *testing.T) {
	s := NewSet()
	s.Add(XYWH(0, 0, 10, 10))
	s.Add(XYWH(1000, 1000, 10, 10))
	if out := s.Coalesce(0); len(out) != 2 {
		t.Fatalf("far-apart rects should not merge with zero budget, got %v", out)
	}
	if out := s.Coalesce(1 << 30); len(out) != 1 {
		t.Fatalf("huge budget should merge everything, got %v", out)
	}
}

func TestSetInvariantRandomOps(t *testing.T) {
	// Mixed Add/Subtract sequence preserves the disjointness invariant and
	// point membership matches a bitmap model.
	const n = 64
	rng := rand.New(rand.NewSource(7))
	s := NewSet()
	var model [n][n]bool
	for step := 0; step < 200; step++ {
		r := XYWH(rng.Intn(n), rng.Intn(n), rng.Intn(20)+1, rng.Intn(20)+1)
		r = r.Intersect(XYWH(0, 0, n, n))
		if rng.Intn(3) == 0 {
			s.Subtract(r)
			for y := r.Top; y < r.Bottom(); y++ {
				for x := r.Left; x < r.Right(); x++ {
					model[y][x] = false
				}
			}
		} else {
			s.Add(r)
			for y := r.Top; y < r.Bottom(); y++ {
				for x := r.Left; x < r.Right(); x++ {
					model[y][x] = true
				}
			}
		}
	}
	area := 0
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if model[y][x] {
				area++
			}
			if s.Contains(x, y) != model[y][x] {
				t.Fatalf("membership mismatch at (%d,%d)", x, y)
			}
		}
	}
	if s.Area() != area {
		t.Fatalf("Area = %d, model = %d", s.Area(), area)
	}
}

func TestTranslateWithin(t *testing.T) {
	s := NewSet()
	s.Add(XYWH(10, 100, 20, 10)) // fully inside the blit source
	s.Add(XYWH(200, 200, 5, 5))  // outside: stays put
	s.Add(XYWH(45, 100, 20, 10)) // straddles the source edge at x=50

	// Blit source (0,0 50x200) moves up by 30.
	s.TranslateWithin(XYWH(0, 0, 50, 200), 0, -30)

	if !s.Contains(15, 75) {
		t.Error("inside damage did not move with the content")
	}
	if s.Contains(15, 105) {
		t.Error("inside damage left a stale copy behind")
	}
	if !s.Contains(202, 202) {
		t.Error("outside damage moved")
	}
	// The straddling rect splits: the part inside moved, the rest stayed.
	if !s.Contains(47, 75) {
		t.Error("straddling inside part did not move")
	}
	if !s.Contains(55, 105) {
		t.Error("straddling outside part did not stay")
	}
	if s.Contains(47, 105) {
		t.Error("straddling inside part left a copy")
	}
}

func TestTranslateWithinNoOps(t *testing.T) {
	s := NewSet()
	s.Add(XYWH(0, 0, 10, 10))
	before := s.Area()
	s.TranslateWithin(Rect{}, 5, 5)               // empty source
	s.TranslateWithin(XYWH(0, 0, 100, 100), 0, 0) // zero delta
	if s.Area() != before || !s.Contains(5, 5) {
		t.Fatal("no-op translate changed the set")
	}
}

func TestTranslateWithinPreservesArea(t *testing.T) {
	// Moving damage wholly inside the source preserves total area when
	// the destination does not overlap other damage.
	s := NewSet()
	s.Add(XYWH(10, 10, 10, 10))
	s.TranslateWithin(XYWH(0, 0, 100, 100), 25, 40)
	if s.Area() != 100 {
		t.Fatalf("area = %d, want 100", s.Area())
	}
	if !s.Contains(36, 51) {
		t.Fatal("moved damage missing")
	}
}

func TestDuplicateWithin(t *testing.T) {
	s := NewSet()
	s.Add(XYWH(10, 100, 20, 10))
	s.Add(XYWH(200, 200, 5, 5)) // outside
	s.DuplicateWithin(XYWH(0, 0, 50, 200), 0, -30)
	// Both old and new locations covered; outside untouched.
	if !s.Contains(15, 105) || !s.Contains(15, 75) {
		t.Fatal("duplicate must cover old and new locations")
	}
	if !s.Contains(202, 202) {
		t.Fatal("outside damage must stay")
	}
	// No-ops.
	before := s.Area()
	s.DuplicateWithin(Rect{}, 1, 1)
	s.DuplicateWithin(XYWH(0, 0, 500, 500), 0, 0)
	if s.Area() != before {
		t.Fatal("no-op duplicate changed the set")
	}
}
