package region

// Bands is a scanline-band region representation, the structure X
// servers and compositors use: the region is a sorted list of
// non-overlapping horizontal bands, each holding sorted, disjoint,
// non-adjacent x-spans. Compared to the rectangle-list Set, operations
// are local to the affected bands. `BenchmarkRegionStructures` measures
// the crossover: Set wins below ~a few hundred accumulated rectangles
// (the per-tick damage regime, which is why Set remains the default);
// Bands wins ~2x at a thousand and the gap grows. The property tests
// prove the two structures equivalent on arbitrary op sequences.
//
// The zero value is an empty region. Bands is not safe for concurrent
// use.
type Bands struct {
	bands []band
}

type band struct {
	top, bottom int // half-open [top, bottom)
	spans       []span
}

type span struct {
	x0, x1 int // half-open [x0, x1)
}

// NewBands returns an empty region.
func NewBands() *Bands { return &Bands{} }

// Empty reports whether the region covers no pixels.
func (b *Bands) Empty() bool { return len(b.bands) == 0 }

// Clear removes everything.
func (b *Bands) Clear() { b.bands = b.bands[:0] }

// Area returns the covered pixel count.
func (b *Bands) Area() int {
	total := 0
	for _, bd := range b.bands {
		w := 0
		for _, s := range bd.spans {
			w += s.x1 - s.x0
		}
		total += w * (bd.bottom - bd.top)
	}
	return total
}

// Contains reports whether (x, y) is covered.
func (b *Bands) Contains(x, y int) bool {
	for _, bd := range b.bands {
		if y < bd.top {
			return false
		}
		if y >= bd.bottom {
			continue
		}
		for _, s := range bd.spans {
			if x < s.x0 {
				return false
			}
			if x < s.x1 {
				return true
			}
		}
		return false
	}
	return false
}

// Bounds returns the smallest rectangle containing the region.
func (b *Bands) Bounds() Rect {
	if len(b.bands) == 0 {
		return Rect{}
	}
	top := b.bands[0].top
	bottom := b.bands[len(b.bands)-1].bottom
	left, right := int(^uint(0)>>1), -int(^uint(0)>>1)-1
	for _, bd := range b.bands {
		if bd.spans[0].x0 < left {
			left = bd.spans[0].x0
		}
		if last := bd.spans[len(bd.spans)-1].x1; last > right {
			right = last
		}
	}
	return Rect{Left: left, Top: top, Width: right - left, Height: bottom - top}
}

// Rects decomposes the region into disjoint rectangles, one per
// (band, span), merging vertically-adjacent bands with identical spans.
func (b *Bands) Rects() []Rect {
	b.coalesce()
	var out []Rect
	for _, bd := range b.bands {
		for _, s := range bd.spans {
			out = append(out, Rect{Left: s.x0, Top: bd.top, Width: s.x1 - s.x0, Height: bd.bottom - bd.top})
		}
	}
	return out
}

// firstBandAtOrBelow returns the index of the first band whose bottom
// exceeds y (binary search; bands are sorted and disjoint).
func (b *Bands) firstBandAtOrBelow(y int) int {
	lo, hi := 0, len(b.bands)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.bands[mid].bottom <= y {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Add unions a rectangle into the region.
func (b *Bands) Add(r Rect) {
	r = r.Canon()
	if r.Empty() {
		return
	}
	b.splitAt(r.Top)
	b.splitAt(r.Bottom())

	// Edit only the bands overlapping [r.Top, r.Bottom); fill gaps with
	// fresh bands collected separately and spliced in afterward.
	sp := span{r.Left, r.Right()}
	y := r.Top
	var gaps []band
	i := b.firstBandAtOrBelow(r.Top)
	for ; i < len(b.bands) && b.bands[i].top < r.Bottom(); i++ {
		bd := &b.bands[i]
		if y < bd.top {
			gaps = append(gaps, band{top: y, bottom: bd.top, spans: []span{sp}})
		}
		bd.spans = insertSpan(bd.spans, sp)
		y = bd.bottom
	}
	if y < r.Bottom() {
		gaps = append(gaps, band{top: y, bottom: r.Bottom(), spans: []span{sp}})
	}
	for _, g := range gaps {
		b.bands = insertBandSorted(b.bands, g)
	}
	b.coalesce()
}

// SubtractRect removes a rectangle from the region.
func (b *Bands) SubtractRect(r Rect) {
	r = r.Canon()
	if r.Empty() || len(b.bands) == 0 {
		return
	}
	b.splitAt(r.Top)
	b.splitAt(r.Bottom())
	changed := false
	for i := b.firstBandAtOrBelow(r.Top); i < len(b.bands) && b.bands[i].top < r.Bottom(); i++ {
		bd := &b.bands[i]
		bd.spans = removeSpan(bd.spans, span{r.Left, r.Right()})
		if len(bd.spans) == 0 {
			changed = true
		}
	}
	if changed {
		out := b.bands[:0]
		for _, bd := range b.bands {
			if len(bd.spans) > 0 {
				out = append(out, bd)
			}
		}
		b.bands = out
	}
	b.coalesce()
}

// AddSet unions all rectangles of a Set.
func (b *Bands) AddSet(s *Set) {
	for _, r := range s.Rects() {
		b.Add(r)
	}
}

// splitAt ensures no band straddles the horizontal line y.
func (b *Bands) splitAt(y int) {
	i := b.firstBandAtOrBelow(y)
	if i >= len(b.bands) {
		return
	}
	bd := b.bands[i]
	if bd.top >= y || y >= bd.bottom {
		return
	}
	upper := band{top: bd.top, bottom: y, spans: append([]span(nil), bd.spans...)}
	b.bands[i].top = y
	// Make room and insert the upper half before index i.
	b.bands = append(b.bands, band{})
	copy(b.bands[i+1:], b.bands[i:])
	b.bands[i] = upper
}

// coalesce merges vertically adjacent bands with identical span lists.
func (b *Bands) coalesce() {
	out := b.bands[:0]
	for _, bd := range b.bands {
		if n := len(out); n > 0 && out[n-1].bottom == bd.top && spansEqual(out[n-1].spans, bd.spans) {
			out[n-1].bottom = bd.bottom
			continue
		}
		out = append(out, bd)
	}
	b.bands = out
}

func spansEqual(a, b []span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// insertSpan unions sp into a sorted disjoint span list, merging
// overlapping and adjacent spans. The input slice is reused when the
// result fits (the common case: extending or absorbing one span).
func insertSpan(spans []span, sp span) []span {
	// Find the run of spans that overlap or touch sp.
	lo := 0
	for lo < len(spans) && spans[lo].x1 < sp.x0 {
		lo++
	}
	hi := lo
	for hi < len(spans) && spans[hi].x0 <= sp.x1 {
		if spans[hi].x0 < sp.x0 {
			sp.x0 = spans[hi].x0
		}
		if spans[hi].x1 > sp.x1 {
			sp.x1 = spans[hi].x1
		}
		hi++
	}
	switch {
	case lo == hi: // pure insertion at lo
		spans = append(spans, span{})
		copy(spans[lo+1:], spans[lo:])
		spans[lo] = sp
		return spans
	case hi-lo == 1: // replace one span in place
		spans[lo] = sp
		return spans
	default: // collapse [lo,hi) into one
		spans[lo] = sp
		return append(spans[:lo+1], spans[hi:]...)
	}
}

// removeSpan subtracts sp from a sorted disjoint span list.
func removeSpan(spans []span, sp span) []span {
	var out []span
	for _, s := range spans {
		if s.x1 <= sp.x0 || s.x0 >= sp.x1 {
			out = append(out, s)
			continue
		}
		if s.x0 < sp.x0 {
			out = append(out, span{s.x0, sp.x0})
		}
		if s.x1 > sp.x1 {
			out = append(out, span{sp.x1, s.x1})
		}
	}
	return out
}

// insertBandSorted appends bd keeping the list sorted by top.
func insertBandSorted(bands []band, bd band) []band {
	for i, existing := range bands {
		if bd.top < existing.top {
			return append(bands[:i], append([]band{bd}, bands[i:]...)...)
		}
	}
	return append(bands, bd)
}
