package region

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestBandsBasics(t *testing.T) {
	b := NewBands()
	if !b.Empty() || b.Area() != 0 {
		t.Fatal("zero value should be empty")
	}
	b.Add(XYWH(10, 10, 20, 30))
	if b.Empty() || b.Area() != 600 {
		t.Fatalf("area = %d", b.Area())
	}
	if !b.Contains(10, 10) || !b.Contains(29, 39) {
		t.Fatal("corners missing")
	}
	if b.Contains(30, 10) || b.Contains(10, 40) || b.Contains(9, 10) {
		t.Fatal("exclusive edges covered")
	}
	if got := b.Bounds(); got != XYWH(10, 10, 20, 30) {
		t.Fatalf("bounds = %v", got)
	}
	rects := b.Rects()
	if len(rects) != 1 || rects[0] != XYWH(10, 10, 20, 30) {
		t.Fatalf("rects = %v", rects)
	}
	b.Clear()
	if !b.Empty() {
		t.Fatal("clear failed")
	}
}

func TestBandsMergeAdjacent(t *testing.T) {
	b := NewBands()
	b.Add(XYWH(0, 0, 10, 10))
	b.Add(XYWH(10, 0, 10, 10)) // horizontally adjacent: one span
	rects := b.Rects()
	if len(rects) != 1 || rects[0] != XYWH(0, 0, 20, 10) {
		t.Fatalf("horizontal merge: %v", rects)
	}
	b.Add(XYWH(0, 10, 20, 5)) // vertically adjacent, same span: one band
	rects = b.Rects()
	if len(rects) != 1 || rects[0] != XYWH(0, 0, 20, 15) {
		t.Fatalf("vertical merge: %v", rects)
	}
}

func TestBandsSubtract(t *testing.T) {
	b := NewBands()
	b.Add(XYWH(0, 0, 30, 30))
	b.SubtractRect(XYWH(10, 10, 10, 10)) // punch a hole
	if b.Area() != 900-100 {
		t.Fatalf("area = %d", b.Area())
	}
	if b.Contains(15, 15) {
		t.Fatal("hole covered")
	}
	if !b.Contains(5, 15) || !b.Contains(25, 15) || !b.Contains(15, 5) || !b.Contains(15, 25) {
		t.Fatal("ring missing")
	}
	// Subtract everything.
	b.SubtractRect(XYWH(-10, -10, 100, 100))
	if !b.Empty() {
		t.Fatalf("not empty: %v", b.Rects())
	}
	// Subtract from empty / disjoint are no-ops.
	b.SubtractRect(XYWH(0, 0, 5, 5))
	b.Add(XYWH(0, 0, 5, 5))
	b.SubtractRect(XYWH(50, 50, 5, 5))
	if b.Area() != 25 {
		t.Fatalf("area = %d", b.Area())
	}
}

func TestBandsIgnoresEmptyRects(t *testing.T) {
	b := NewBands()
	b.Add(Rect{})
	b.Add(XYWH(5, 5, 0, 10))
	b.Add(XYWH(5, 5, -3, 10))
	if !b.Empty() {
		t.Fatalf("empty rects added: %v", b.Rects())
	}
}

// TestBandsEquivalentToSet is the central property: Bands and the naive
// Set agree on membership and area for any random op sequence.
func TestBandsEquivalentToSet(t *testing.T) {
	const n = 48
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		bands := NewBands()
		set := NewSet()
		for step := 0; step < 150; step++ {
			r := XYWH(rng.Intn(n), rng.Intn(n), rng.Intn(16)+1, rng.Intn(16)+1)
			if rng.Intn(3) == 0 {
				bands.SubtractRect(r)
				set.Subtract(r)
			} else {
				bands.Add(r)
				set.Add(r)
			}
			if bands.Area() != set.Area() {
				t.Fatalf("seed %d step %d: area %d vs %d", seed, step, bands.Area(), set.Area())
			}
		}
		for y := 0; y < n+20; y++ {
			for x := 0; x < n+20; x++ {
				if bands.Contains(x, y) != set.Contains(x, y) {
					t.Fatalf("seed %d: membership differs at (%d,%d)", seed, x, y)
				}
			}
		}
		// Rects decomposition must be disjoint and cover the same area.
		rects := bands.Rects()
		area := 0
		for i, a := range rects {
			if a.Empty() {
				t.Fatalf("empty rect in decomposition")
			}
			area += a.Area()
			for j := i + 1; j < len(rects); j++ {
				if a.Overlaps(rects[j]) {
					t.Fatalf("rects %v and %v overlap", a, rects[j])
				}
			}
		}
		if area != set.Area() {
			t.Fatalf("decomposition area %d vs %d", area, set.Area())
		}
	}
}

func TestBandsAddSet(t *testing.T) {
	s := NewSet()
	s.Add(XYWH(0, 0, 10, 10))
	s.Add(XYWH(20, 20, 5, 5))
	b := NewBands()
	b.AddSet(s)
	if b.Area() != s.Area() {
		t.Fatalf("area %d vs %d", b.Area(), s.Area())
	}
}

// BenchmarkRegionStructures compares damage accumulation cost in the
// two structures as the region grows.
func BenchmarkRegionStructures(b *testing.B) {
	mkRects := func(n int) []Rect {
		rng := rand.New(rand.NewSource(42))
		out := make([]Rect, n)
		for i := range out {
			out[i] = XYWH(rng.Intn(1800), rng.Intn(1000), rng.Intn(60)+4, rng.Intn(40)+4)
		}
		return out
	}
	for _, n := range []int{16, 128, 1024} {
		rects := mkRects(n)
		b.Run(fmt.Sprintf("set-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewSet()
				for _, r := range rects {
					s.Add(r)
				}
			}
		})
		b.Run(fmt.Sprintf("bands-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewBands()
				for _, r := range rects {
					s.Add(r)
				}
			}
		})
	}
}
