package region

import "sort"

// Set is a region maintained as a list of disjoint rectangles. It is the
// damage accumulator used by the capture pipeline: drawing operations Add
// their bounds, and the sender drains a coalesced batch per capture tick.
//
// The zero value is an empty, ready-to-use Set. Set is not safe for
// concurrent use; callers synchronize externally.
type Set struct {
	rects []Rect
}

// NewSet returns an empty Set.
func NewSet() *Set { return &Set{} }

// Empty reports whether the set covers no pixels.
func (s *Set) Empty() bool { return len(s.rects) == 0 }

// Area returns the total pixel count of the set.
func (s *Set) Area() int {
	total := 0
	for _, r := range s.rects {
		total += r.Area()
	}
	return total
}

// Rects returns a copy of the disjoint rectangles making up the set.
func (s *Set) Rects() []Rect {
	out := make([]Rect, len(s.rects))
	copy(out, s.rects)
	return out
}

// Clear removes everything from the set.
func (s *Set) Clear() { s.rects = s.rects[:0] }

// Add unions r into the set, keeping the stored rectangles disjoint: the
// new rectangle absorbs the parts of existing rectangles it overlaps.
func (s *Set) Add(r Rect) {
	r = r.Canon()
	if r.Empty() {
		return
	}
	kept := make([]Rect, 0, len(s.rects)+1)
	for _, old := range s.rects {
		if !old.Overlaps(r) {
			kept = append(kept, old)
			continue
		}
		kept = append(kept, old.Subtract(r)...)
	}
	s.rects = append(kept, r)
}

// AddSet unions every rectangle of other into s.
func (s *Set) AddSet(other *Set) {
	for _, r := range other.rects {
		s.Add(r)
	}
}

// Subtract removes r from the set.
func (s *Set) Subtract(r Rect) {
	r = r.Canon()
	if r.Empty() {
		return
	}
	kept := make([]Rect, 0, len(s.rects))
	for _, old := range s.rects {
		kept = append(kept, old.Subtract(r)...)
	}
	s.rects = kept
}

// Intersect keeps only the parts of the set inside r.
func (s *Set) Intersect(r Rect) {
	kept := s.rects[:0]
	for _, old := range s.rects {
		if is := old.Intersect(r); !is.Empty() {
			kept = append(kept, is)
		}
	}
	s.rects = kept
}

// TranslateWithin models a blit: the covered area inside src follows the
// content, moving by (dx, dy); coverage outside src stays put. Screen
// damage must be transformed this way when a scroll moves pixels that
// carry not-yet-transmitted damage — otherwise the damage points at the
// content's old location and the moved pixels are never retransmitted.
func (s *Set) TranslateWithin(src Rect, dx, dy int) {
	if src.Empty() || (dx == 0 && dy == 0) {
		return
	}
	var moved []Rect
	kept := make([]Rect, 0, len(s.rects))
	for _, r := range s.rects {
		is := r.Intersect(src)
		if is.Empty() {
			kept = append(kept, r)
			continue
		}
		kept = append(kept, r.Subtract(src)...)
		moved = append(moved, is.Translate(dx, dy))
	}
	s.rects = kept
	for _, m := range moved {
		s.Add(m)
	}
}

// DuplicateWithin adds a translated copy of the coverage inside src,
// keeping the original. This is the conservative blit transform for
// damage shared between overlapping consumers: a scroll of one window
// must carry its pending damage to the content's new location, but the
// same desktop-coordinate damage may also belong to an overlapping
// window whose content did NOT move — so the old location stays damaged
// too.
func (s *Set) DuplicateWithin(src Rect, dx, dy int) {
	if src.Empty() || (dx == 0 && dy == 0) {
		return
	}
	var copies []Rect
	for _, r := range s.rects {
		if is := r.Intersect(src); !is.Empty() {
			copies = append(copies, is.Translate(dx, dy))
		}
	}
	for _, c := range copies {
		s.Add(c)
	}
}

// Contains reports whether the point lies inside any rectangle of the set.
func (s *Set) Contains(x, y int) bool {
	for _, r := range s.rects {
		if r.Contains(x, y) {
			return true
		}
	}
	return false
}

// Bounds returns the smallest rectangle containing the whole set.
func (s *Set) Bounds() Rect {
	var b Rect
	for _, r := range s.rects {
		b = b.Union(r)
	}
	return b
}

// Coalesce merges the set into a smaller list of rectangles suitable for
// encoding as RegionUpdate messages. maxWaste bounds the tolerated overdraw:
// two rectangles merge only when the area of their union bounds does not
// exceed the sum of their areas by more than maxWaste pixels. A maxWaste of
// zero merges only perfectly adjacent rectangles.
//
// Coalescing trades a little extra encoded area for far fewer messages,
// which matters because each RegionUpdate carries RTP + remoting header
// overhead (draft Figure 6).
func (s *Set) Coalesce(maxWaste int) []Rect {
	rects := s.Rects()
	sort.Slice(rects, func(i, j int) bool {
		if rects[i].Top != rects[j].Top {
			return rects[i].Top < rects[j].Top
		}
		return rects[i].Left < rects[j].Left
	})
	merged := true
	for merged {
		merged = false
		for i := 0; i < len(rects); i++ {
			for j := i + 1; j < len(rects); j++ {
				u := rects[i].Union(rects[j])
				if u.Area() <= rects[i].Area()+rects[j].Area()+maxWaste {
					rects[i] = u
					rects = append(rects[:j], rects[j+1:]...)
					merged = true
					j--
				}
			}
		}
	}
	return rects
}
