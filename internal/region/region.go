// Package region implements the rectangle algebra used throughout the
// application-sharing pipeline: damage accumulation on the host, visible-
// region computation under occlusion, and tiling of large updates into
// fragment-sized pieces.
//
// The coordinate system follows Section 4.1 of the draft: origin (0,0) at
// the upper-left corner, x growing right and y growing down, all units in
// pixels. Rectangles are half-open: a Rect covers columns [Left, Left+Width)
// and rows [Top, Top+Height).
package region

import "fmt"

// Rect is an axis-aligned rectangle in absolute screen coordinates.
// Width and Height are non-negative for all rectangles produced by this
// package; a Rect with zero width or height is empty.
type Rect struct {
	Left, Top     int
	Width, Height int
}

// XYWH is shorthand for constructing a Rect.
func XYWH(left, top, width, height int) Rect {
	return Rect{Left: left, Top: top, Width: width, Height: height}
}

// Right returns the exclusive right edge.
func (r Rect) Right() int { return r.Left + r.Width }

// Bottom returns the exclusive bottom edge.
func (r Rect) Bottom() int { return r.Top + r.Height }

// Empty reports whether the rectangle covers no pixels.
func (r Rect) Empty() bool { return r.Width <= 0 || r.Height <= 0 }

// Area returns the number of pixels covered.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.Width * r.Height
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d %dx%d)", r.Left, r.Top, r.Width, r.Height)
}

// Canon returns the rectangle with negative dimensions clamped to empty.
func (r Rect) Canon() Rect {
	if r.Width < 0 {
		r.Width = 0
	}
	if r.Height < 0 {
		r.Height = 0
	}
	return r
}

// Contains reports whether the point (x, y) lies inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.Left && x < r.Right() && y >= r.Top && y < r.Bottom()
}

// ContainsRect reports whether s lies entirely within r. An empty s is
// contained in anything.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.Left >= r.Left && s.Right() <= r.Right() &&
		s.Top >= r.Top && s.Bottom() <= r.Bottom()
}

// Intersect returns the overlap of r and s (empty if they do not overlap).
func (r Rect) Intersect(s Rect) Rect {
	left := max(r.Left, s.Left)
	top := max(r.Top, s.Top)
	right := min(r.Right(), s.Right())
	bottom := min(r.Bottom(), s.Bottom())
	out := Rect{Left: left, Top: top, Width: right - left, Height: bottom - top}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Overlaps reports whether r and s share at least one pixel.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the smallest rectangle containing both r and s. If either
// is empty the other is returned.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	left := min(r.Left, s.Left)
	top := min(r.Top, s.Top)
	right := max(r.Right(), s.Right())
	bottom := max(r.Bottom(), s.Bottom())
	return Rect{Left: left, Top: top, Width: right - left, Height: bottom - top}
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	r.Left += dx
	r.Top += dy
	return r
}

// Subtract returns r minus s as a set of up to four disjoint rectangles.
// The result is empty when s covers r entirely, and [r] when they do not
// overlap. The pieces are emitted in top, bottom, left, right order.
func (r Rect) Subtract(s Rect) []Rect {
	is := r.Intersect(s)
	if is.Empty() {
		if r.Empty() {
			return nil
		}
		return []Rect{r}
	}
	if is == r {
		return nil
	}
	var out []Rect
	// Band above the intersection.
	if is.Top > r.Top {
		out = append(out, Rect{Left: r.Left, Top: r.Top, Width: r.Width, Height: is.Top - r.Top})
	}
	// Band below the intersection.
	if is.Bottom() < r.Bottom() {
		out = append(out, Rect{Left: r.Left, Top: is.Bottom(), Width: r.Width, Height: r.Bottom() - is.Bottom()})
	}
	// Left remnant within the intersection's vertical band.
	if is.Left > r.Left {
		out = append(out, Rect{Left: r.Left, Top: is.Top, Width: is.Left - r.Left, Height: is.Height})
	}
	// Right remnant within the intersection's vertical band.
	if is.Right() < r.Right() {
		out = append(out, Rect{Left: is.Right(), Top: is.Top, Width: r.Right() - is.Right(), Height: is.Height})
	}
	return out
}

// Tiles splits r into tiles of at most tileW x tileH pixels, scanning
// left-to-right then top-to-bottom. Edge tiles may be smaller. It panics if
// either tile dimension is not positive, since that is a programming error.
func (r Rect) Tiles(tileW, tileH int) []Rect {
	if tileW <= 0 || tileH <= 0 {
		panic("region: non-positive tile size")
	}
	if r.Empty() {
		return nil
	}
	out := make([]Rect, 0, ((r.Width+tileW-1)/tileW)*((r.Height+tileH-1)/tileH))
	for y := r.Top; y < r.Bottom(); y += tileH {
		h := min(tileH, r.Bottom()-y)
		for x := r.Left; x < r.Right(); x += tileW {
			w := min(tileW, r.Right()-x)
			out = append(out, Rect{Left: x, Top: y, Width: w, Height: h})
		}
	}
	return out
}
