package appshare

import (
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net"
	"sync"
	"time"

	"appshare/internal/framing"
	"appshare/internal/keycodes"
	"appshare/internal/trace"
	"appshare/internal/transport"
)

// Network glue over real sockets: TCP participants use RFC 4571 framing
// (draft Section 4.4); UDP participants exchange raw RTP/RTCP datagrams
// (Section 4.3) behind a per-source demultiplexer.

// ServeTCP accepts connections on ln and attaches each as a stream
// participant with the given options. It blocks until the listener
// fails or the host closes; callers usually run it in a goroutine.
//
// A connection that fails to attach (duplicate remote ID, failed initial
// state push) is closed and skipped — one bad viewer must not kill the
// accept loop for every future one.
func ServeTCP(h *Host, ln net.Listener, opts StreamOptions) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if _, err := h.AttachStream(conn.RemoteAddr().String(), conn, opts); err != nil {
			_ = conn.Close()
			if errors.Is(err, ErrHostClosed) {
				return err
			}
			continue
		}
	}
}

// Connection binds a Participant to a network path toward a Host: it
// pumps incoming remoting packets into the participant and offers send
// helpers for HIP events and RTCP feedback.
type Connection struct {
	p *Participant

	mu     sync.Mutex
	sendFn func(pkt []byte) error
	// batchFn, when non-nil, ships a run of packets in one transport
	// operation (framing.WriteFrames writev on streams, SendBatch on
	// batch-capable packet conns); nil falls back to per-packet sends.
	batchFn  func(pkts [][]byte) error
	closer   io.Closer
	recorder *trace.Writer

	done chan struct{}
	err  error
	mtu  int
}

// Participant returns the bound participant.
func (c *Connection) Participant() *Participant { return c.p }

// Done is closed when the receive pump stops.
func (c *Connection) Done() <-chan struct{} { return c.done }

// Err returns the terminal pump error (nil on clean close).
func (c *Connection) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down.
func (c *Connection) Close() error {
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

func (c *Connection) finish(err error) {
	c.mu.Lock()
	if c.err == nil && !errors.Is(err, io.EOF) {
		c.err = err
	}
	closer := c.closer
	c.mu.Unlock()
	// Pump teardown releases the transport: once the receive side is
	// dead the connection cannot recover, so holding the socket open
	// only leaks it (Close stays idempotent for explicit callers).
	if closer != nil {
		_ = closer.Close()
	}
	close(c.done)
}

// send ships one packet toward the host.
func (c *Connection) send(pkt []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sendFn(pkt)
}

// sendBatch ships a run of packets toward the host in one transport
// operation when the path supports it.
func (c *Connection) sendBatch(pkts [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.batchFn != nil {
		return c.batchFn(pkts)
	}
	for _, pkt := range pkts {
		if err := c.sendFn(pkt); err != nil {
			return err
		}
	}
	return nil
}

// SendHIP ships a prebuilt HIP RTP packet (from the Participant's
// builders) toward the host.
func (c *Connection) SendHIP(pkt []byte) error { return c.send(pkt) }

// SendPLI requests a full refresh (Section 5.3.1).
func (c *Connection) SendPLI() error {
	pli, err := c.p.BuildPLI()
	if err != nil {
		return err
	}
	return c.send(pli)
}

// SendNACKIfNeeded requests retransmission of currently missing packets
// (Section 5.3.2); it is a no-op when nothing is missing.
func (c *Connection) SendNACKIfNeeded() error {
	nack, err := c.p.BuildNACK()
	if err != nil || nack == nil {
		return err
	}
	return c.send(nack)
}

// Click sends a MousePressed followed by MouseReleased at absolute
// coordinates.
func (c *Connection) Click(windowID uint16, x, y int, button uint8) error {
	press, err := c.p.MousePress(windowID, x, y, button)
	if err != nil {
		return err
	}
	if err := c.send(press); err != nil {
		return err
	}
	release, err := c.p.MouseRelease(windowID, x, y, button)
	if err != nil {
		return err
	}
	return c.send(release)
}

// MoveMouse sends a MouseMoved event.
func (c *Connection) MoveMouse(windowID uint16, x, y int) error {
	pkt, err := c.p.MouseMove(windowID, x, y)
	if err != nil {
		return err
	}
	return c.send(pkt)
}

// Wheel sends a MouseWheelMoved event (distance: 120 per notch).
func (c *Connection) Wheel(windowID uint16, x, y int, distance int32) error {
	pkt, err := c.p.MouseWheel(windowID, x, y, distance)
	if err != nil {
		return err
	}
	return c.send(pkt)
}

// PressKey sends KeyPressed then KeyReleased for a virtual key.
func (c *Connection) PressKey(windowID uint16, code KeyCode) error {
	press, err := c.p.KeyPress(windowID, keycodes.Code(code))
	if err != nil {
		return err
	}
	if err := c.send(press); err != nil {
		return err
	}
	release, err := c.p.KeyRelease(windowID, keycodes.Code(code))
	if err != nil {
		return err
	}
	return c.send(release)
}

// Type sends the text as KeyTyped messages (Section 6.8).
func (c *Connection) Type(windowID uint16, text string) error {
	pkts, err := c.p.TypeText(windowID, text, c.mtu)
	if err != nil {
		return err
	}
	return c.sendBatch(pkts)
}

// ConnectStream binds the participant to an established reliable stream
// (e.g. a dialed TCP connection): framed remoting packets are pumped in,
// and HIP/RTCP go out framed.
func ConnectStream(p *Participant, rw io.ReadWriteCloser) *Connection {
	fw := framing.NewWriter(rw)
	c := &Connection{
		p:       p,
		sendFn:  fw.WriteFrame,
		batchFn: fw.WriteFrames,
		closer:  rw,
		done:    make(chan struct{}),
		mtu:     1200,
	}
	go func() {
		fr := framing.NewReader(rw)
		for {
			pkt, err := fr.ReadFrame()
			if err != nil {
				c.finish(err)
				return
			}
			c.dispatch(pkt)
		}
	}()
	return c
}

// dispatch demuxes one incoming packet: RTCP (RFC 5761 range) goes to
// the participant's report handler, everything else to the remoting
// stream. When a recorder is attached the packet is journaled first.
func (c *Connection) dispatch(pkt []byte) {
	c.mu.Lock()
	rec := c.recorder
	c.mu.Unlock()
	if rec != nil {
		_ = rec.Record(time.Now(), pkt)
	}
	if len(pkt) >= 2 && pkt[1] >= 200 && pkt[1] <= 207 {
		_, _ = c.p.HandleRTCP(pkt)
		return
	}
	_ = c.p.HandlePacket(pkt) // tolerate stray packets
}

// RecordTo journals every incoming packet (remoting RTP and RTCP) to the
// trace writer, for offline replay with cmd/ads-replay. Pass nil to stop
// recording.
func (c *Connection) RecordTo(w *trace.Writer) {
	c.mu.Lock()
	c.recorder = w
	c.mu.Unlock()
}

// DialTCP connects to a host's TCP remoting port and binds p to it.
func DialTCP(p *Participant, addr string) (*Connection, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("appshare: dial %s: %w", addr, err)
	}
	return ConnectStream(p, conn), nil
}

// UseHIPStream redirects this connection's outgoing HIP and RTCP onto a
// dedicated stream (framed per RFC 4571) — the draft's two-port layout
// where remoting and HIP travel on different connections (SDP example:
// ports 6000 and 6006). Incoming remoting packets keep flowing on the
// original path.
func (c *Connection) UseHIPStream(rw io.WriteCloser) {
	fw := framing.NewWriter(rw)
	c.mu.Lock()
	c.sendFn = fw.WriteFrame
	c.batchFn = fw.WriteFrames
	c.mu.Unlock()
}

// ConnectPacket binds the participant to a datagram path (simulated link
// or adapted UDP socket).
func ConnectPacket(p *Participant, conn PacketConn) *Connection {
	c := &Connection{
		p:      p,
		sendFn: conn.Send,
		closer: closerFunc(conn.Close),
		done:   make(chan struct{}),
		mtu:    1200,
	}
	if bs, ok := conn.(transport.BatchSender); ok {
		c.batchFn = func(pkts [][]byte) error {
			_, err := bs.SendBatch(pkts)
			return err
		}
	}
	go func() {
		for {
			pkt, err := conn.Recv()
			if err != nil {
				c.finish(err)
				return
			}
			c.dispatch(pkt)
		}
	}()
	return c
}

// SendReceiverReport ships an RTCP RR describing reception quality.
func (c *Connection) SendReceiverReport() error {
	rr, err := c.p.BuildReceiverReport()
	if err != nil {
		return err
	}
	return c.send(rr)
}

// RepairLoop runs the participant's feedback maintenance until stop is
// closed or the connection dies: every interval it sends a PLI if the
// stream lost synchronization, otherwise a NACK for any missing packets.
// jitter adds a random delay before each NACK, the draft's Section 5.3.2
// storm precaution for multicast members ("waiting random amount of time
// before sending a NACK Request"). Run it in a goroutine.
func (c *Connection) RepairLoop(stop <-chan struct{}, interval, jitter time.Duration) error {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var lastPLI time.Time
	for {
		select {
		case <-stop:
			return nil
		case <-c.done:
			return c.Err()
		case <-ticker.C:
			// Gaps are always NACKed — even while waiting for a PLI
			// refresh, whose packets can themselves be lost and need
			// retransmission.
			if len(c.p.MissingSequences()) > 0 {
				if jitter > 0 {
					delay := time.Duration(mrand.Int63n(int64(jitter)))
					select {
					case <-stop:
						return nil
					case <-time.After(delay):
					}
				}
				// Re-check: another group member's NACK may already
				// have repaired the stream during the hold-down.
				if err := c.SendNACKIfNeeded(); err != nil {
					return err
				}
			}
			if c.p.NeedsRefresh() && time.Since(lastPLI) >= 250*time.Millisecond {
				// Keep requesting until the refresh actually lands
				// (NeedsRefresh stays true until then), but no more
				// than a few times per second — the host rate-limits
				// PLI service anyway.
				lastPLI = time.Now()
				if err := c.SendPLI(); err != nil {
					return err
				}
			}
		}
	}
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// UDPAdapter wraps a connected *net.UDPConn as a PacketConn.
type UDPAdapter struct {
	Conn *net.UDPConn
}

// Send implements PacketConn.
func (u *UDPAdapter) Send(pkt []byte) error {
	_, err := u.Conn.Write(pkt)
	return err
}

// SendBatch implements transport.BatchSender with a per-datagram loop.
// Unlike the stream path, UDP must NOT gather the run into one write: a
// net.Buffers writev on a datagram socket coalesces every buffer into a
// single (oversized) datagram, destroying the packet boundaries RTP
// depends on. The batch still saves the per-packet call overhead above
// this layer; collapsing the loop into one sendmmsg would need
// golang.org/x/net, which this module deliberately does not depend on.
func (u *UDPAdapter) SendBatch(pkts [][]byte) (int, error) {
	for i, pkt := range pkts {
		if _, err := u.Conn.Write(pkt); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

// Recv implements PacketConn.
func (u *UDPAdapter) Recv() ([]byte, error) {
	buf := make([]byte, 64<<10)
	n, err := u.Conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// Close implements PacketConn.
func (u *UDPAdapter) Close() error { return u.Conn.Close() }

// DialUDP connects to a host's UDP remoting port and binds p to it.
// Callers should follow with SendPLI, the Section 4.3 joining flow.
func DialUDP(p *Participant, addr string) (*Connection, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("appshare: dial udp %s: %w", addr, err)
	}
	return ConnectPacket(p, &UDPAdapter{Conn: conn}), nil
}

// DialSession joins a sharing session described by an SDP offer (draft
// Section 10): it parses the offer, prefers the UDP remoting stream when
// offered (falling back to TCP), dials host:port and binds p. For UDP
// sessions the caller should follow with SendPLI per Section 4.3.
func DialSession(p *Participant, host, offer string) (*Connection, *SDPSession, error) {
	sess, err := ParseSDPOffer(offer)
	if err != nil {
		return nil, nil, err
	}
	if sess.RemotingUDPPort != 0 {
		conn, err := DialUDP(p, fmt.Sprintf("%s:%d", host, sess.RemotingUDPPort))
		return conn, sess, err
	}
	conn, err := DialTCP(p, fmt.Sprintf("%s:%d", host, sess.RemotingTCPPort))
	return conn, sess, err
}

// ServeUDP serves UDP participants from one socket, demultiplexing by
// source address: the first datagram from a new source (typically its
// PLI) attaches it as a participant. Blocks until the socket fails.
func ServeUDP(h *Host, conn *net.UDPConn, opts PacketOptions) error {
	srv := &udpServer{
		conn:    conn,
		remotes: make(map[string]*udpRemote),
		attach: func(id string, pc transport.PacketConn) error {
			_, err := h.AttachPacketConn(id, pc, opts)
			return err
		},
	}
	return srv.run()
}

type udpServer struct {
	conn *net.UDPConn
	// attach binds one demultiplexed source to a receiver — a Host
	// participant (ServeUDP) or a relay viewer (RelayServeUDP).
	attach  func(id string, pc transport.PacketConn) error
	mu      sync.Mutex
	remotes map[string]*udpRemote
}

// udpRemote adapts one peer address of a shared socket to PacketConn.
type udpRemote struct {
	srv   *udpServer
	addr  *net.UDPAddr
	inbox chan []byte
	once  sync.Once
	dead  chan struct{}
}

func (r *udpRemote) Send(pkt []byte) error {
	_, err := r.srv.conn.WriteToUDP(pkt, r.addr)
	return err
}

// SendBatch implements transport.BatchSender. Per-datagram writes for
// the same reason as UDPAdapter.SendBatch: gathering datagrams into one
// write would merge them. The shared socket's destination address is
// resolved once per call here instead of once per packet upstream.
func (r *udpRemote) SendBatch(pkts [][]byte) (int, error) {
	for i, pkt := range pkts {
		if _, err := r.srv.conn.WriteToUDP(pkt, r.addr); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

func (r *udpRemote) Recv() ([]byte, error) {
	select {
	case pkt := <-r.inbox:
		return pkt, nil
	case <-r.dead:
		return nil, io.EOF
	}
}

func (r *udpRemote) Close() error {
	r.once.Do(func() {
		close(r.dead)
		r.srv.mu.Lock()
		delete(r.srv.remotes, r.addr.String())
		r.srv.mu.Unlock()
	})
	return nil
}

func (s *udpServer) run() error {
	buf := make([]byte, 64<<10)
	for {
		n, addr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return err
		}
		pkt := append([]byte(nil), buf[:n]...)
		key := addr.String()
		s.mu.Lock()
		r, ok := s.remotes[key]
		if !ok {
			r = &udpRemote{srv: s, addr: addr, inbox: make(chan []byte, 256), dead: make(chan struct{})}
			s.remotes[key] = r
			s.mu.Unlock()
			if err := s.attach(key, r); err != nil {
				_ = r.Close()
				continue
			}
		} else {
			s.mu.Unlock()
		}
		select {
		case r.inbox <- pkt:
		default: // participant is not draining; drop like UDP would
		}
	}
}

// Ensure the adapters satisfy the interfaces (including the batched
// fast path the host's packet sink resolves at attach).
var (
	_ transport.PacketConn  = (*UDPAdapter)(nil)
	_ transport.BatchSender = (*UDPAdapter)(nil)
	_ transport.PacketConn  = (*udpRemote)(nil)
	_ transport.BatchSender = (*udpRemote)(nil)
)
