package appshare_test

import (
	"testing"

	"appshare/internal/bfcp"
	"appshare/internal/core"
	"appshare/internal/hip"
	"appshare/internal/remoting"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
	"appshare/internal/sdp"
)

// Native fuzz targets for every network-facing decoder. Without -fuzz
// they run the seed corpus as regression tests; with
// `go test -fuzz FuzzRemotingDecode .` they explore further.

func FuzzRemotingDecode(f *testing.F) {
	wm, _ := (&remoting.WindowManagerInfo{Windows: []remoting.WindowRecord{{WindowID: 1}}}).Marshal()
	mv, _ := (&remoting.MoveRectangle{WindowID: 1, Width: 2, Height: 2}).Marshal()
	f.Add(wm)
	f.Add(mv)
	f.Add([]byte{2, 0x80 | 96, 0, 1, 0, 0, 0, 5, 0, 0, 0, 6, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := remoting.DecodePayload(data)
		if err == nil && msg == nil {
			t.Fatal("nil message with nil error")
		}
	})
}

func FuzzHIPDecode(f *testing.F) {
	press, _ := hip.Marshal(&hip.MousePressed{WindowID: 1, Button: 1, Left: 2, Top: 3})
	typed, _ := hip.Marshal(&hip.KeyTyped{WindowID: 1, Text: "abc"})
	f.Add(press)
	f.Add(typed)
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := hip.Unmarshal(data)
		if err == nil && ev == nil {
			t.Fatal("nil event with nil error")
		}
		if err == nil {
			// Valid events re-marshal.
			if _, err := hip.Marshal(ev); err != nil {
				t.Fatalf("re-marshal of valid event failed: %v", err)
			}
		}
	})
}

func FuzzRTCPDecode(f *testing.F) {
	pli, _ := rtcp.Marshal(&rtcp.PLI{SenderSSRC: 1, MediaSSRC: 2})
	nack, _ := rtcp.Marshal(&rtcp.NACK{SenderSSRC: 1, MediaSSRC: 2, Pairs: []rtcp.NACKPair{{PID: 7}}})
	f.Add(pli)
	f.Add(nack)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = rtcp.Unmarshal(data)
	})
}

func FuzzRTPDecode(f *testing.F) {
	f.Add([]byte{0x80, 99, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p rtp.Packet
		_ = p.Unmarshal(data)
	})
}

func FuzzBFCPDecode(f *testing.F) {
	req, _ := (&bfcp.Message{Primitive: bfcp.FloorRequest}).Marshal()
	granted, _ := (&bfcp.Message{Primitive: bfcp.FloorGranted, HIDStatus: bfcp.StateAllAllowed}).Marshal()
	f.Add(req)
	f.Add(granted)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := bfcp.Unmarshal(data)
		if err == nil {
			// Known primitives re-marshal; unknown ones error cleanly.
			if _, err := m.Marshal(); err != nil {
				switch m.Primitive {
				case bfcp.FloorRequest, bfcp.FloorRelease, bfcp.FloorRequestQueued,
					bfcp.FloorGranted, bfcp.FloorReleased:
					t.Fatalf("known primitive failed to re-marshal: %v", err)
				}
			}
		}
	})
}

func FuzzSDPParse(f *testing.F) {
	f.Add("v=0\r\ns=-\r\nt=0 0\r\nm=application 6000 RTP/AVP 99\r\na=rtpmap:99 remoting/90000\r\n")
	f.Add(sdp.Example103)
	f.Fuzz(func(t *testing.T, text string) {
		d, err := sdp.Parse(text)
		if err == nil {
			// A parse success must re-marshal and re-parse.
			if _, err := sdp.Parse(d.Marshal()); err != nil {
				t.Fatalf("re-parse of marshaled SDP failed: %v", err)
			}
		}
	})
}

func FuzzReassemblerPush(f *testing.F) {
	f.Add([]byte{2, 0x80, 0, 1, 0, 0, 0, 1, 0, 0, 0, 2, 9, 9}, true)
	f.Add([]byte{2, 0x00, 0, 1, 5, 5}, false)
	f.Fuzz(func(t *testing.T, payload []byte, marker bool) {
		ra := core.NewReassembler()
		_, _ = ra.Push(payload, marker)
		_, _ = ra.Push(payload, !marker)
	})
}
