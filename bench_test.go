// Benchmarks for every experiment in DESIGN.md's per-experiment index.
// Each BenchmarkEnn target measures the hot path behind the
// corresponding table/figure reproduction; cmd/ads-bench prints the
// paper-style tables themselves.
package appshare_test

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"io"
	"sync"
	"testing"
	"time"

	"appshare"
	"appshare/internal/bfcp"
	"appshare/internal/capture"
	"appshare/internal/codec"
	"appshare/internal/core"
	"appshare/internal/framing"
	"appshare/internal/hip"
	"appshare/internal/keycodes"
	"appshare/internal/region"
	"appshare/internal/remoting"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
	"appshare/internal/sdp"
	"appshare/internal/wire"
	"appshare/internal/workload"
)

// BenchmarkE01HeaderCodec measures the common remoting/HIP header
// (Figure 7) encode+decode path every packet traverses.
func BenchmarkE01HeaderCodec(b *testing.B) {
	w := wire.NewWriter(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := wire.NewWriter(4)
		core.Header{Type: core.TypeRegionUpdate, Parameter: 0x85, WindowID: 3}.AppendTo(w)
		if _, _, err := core.ParseHeader(w.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
	_ = w
}

// BenchmarkE02WMInfoCodec measures WindowManagerInfo (Figures 8/9)
// marshal + decode for a 10-window desktop.
func BenchmarkE02WMInfoCodec(b *testing.B) {
	msg := &remoting.WindowManagerInfo{}
	for i := 0; i < 10; i++ {
		msg.Windows = append(msg.Windows, remoting.WindowRecord{
			WindowID: uint16(i + 1),
			GroupID:  uint8(i % 3),
			Bounds:   region.XYWH(i*50, i*40, 400, 300),
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := msg.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := remoting.DecodePayload(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE03FragmentReassemble measures the Table 2 fragmentation
// machinery: a 64 KiB update split at MTU 1200 and reassembled.
func BenchmarkE03FragmentReassemble(b *testing.B) {
	content := bytes.Repeat([]byte{0xA5}, 64<<10)
	update := &remoting.RegionUpdate{WindowID: 1, ContentPT: 96, Content: content}
	ra := core.NewReassembler()
	b.SetBytes(int64(len(content)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frags, err := update.Fragments(1200)
		if err != nil {
			b.Fatal(err)
		}
		var done bool
		for _, f := range frags {
			msg, err := ra.Push(f.Payload, f.Marker)
			if err != nil {
				b.Fatal(err)
			}
			done = msg != nil
		}
		if !done {
			b.Fatal("message did not complete")
		}
	}
}

// BenchmarkE04ScrollMoveVsUpdate compares one scrolled-frame capture
// with MoveRectangle detection against full pixel re-encoding.
func BenchmarkE04ScrollMoveVsUpdate(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"move", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			desk := appshare.NewDesktop(1280, 1024)
			win := desk.CreateWindow(1, appshare.XYWH(100, 80, 640, 480))
			host, err := appshare.NewHost(appshare.HostConfig{
				Desktop: desk,
				Capture: appshare.CaptureOptions{DisableMoveDetection: mode.disable},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer host.Close()
			sc := workload.NewScrolling(win, 3, 7)
			if err := host.Tick(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Step()
				if err := host.Tick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE07HIPCodec measures HIP event (Table 3) marshal+unmarshal.
func BenchmarkE07HIPCodec(b *testing.B) {
	events := []hip.Event{
		&hip.MousePressed{WindowID: 1, Button: 1, Left: 640, Top: 480},
		&hip.MouseMoved{WindowID: 1, Left: 641, Top: 481},
		&hip.MouseWheelMoved{WindowID: 1, Left: 641, Top: 481, Distance: -120},
		&hip.KeyPressed{WindowID: 1, KeyCode: keycodes.VKF1},
		&hip.KeyTyped{WindowID: 1, Text: "hello"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := events[i%len(events)]
		buf, err := hip.Marshal(e)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := hip.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE08LateJoin measures building a full PLI refresh (window
// state + full-window content + pointer) of a 640x480 text window.
func BenchmarkE08LateJoin(b *testing.B) {
	desk := appshare.NewDesktop(1280, 1024)
	win := desk.CreateWindow(1, appshare.XYWH(100, 80, 640, 480))
	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk})
	if err != nil {
		b.Fatal(err)
	}
	defer host.Close()
	ty := workload.NewTyping(win, 2000, 3)
	for i := 0; i < 20; i++ {
		ty.Step()
	}
	if err := host.Tick(); err != nil {
		b.Fatal(err)
	}
	hostSide, partSide := appshare.SimulatedLink(appshare.LinkConfig{Seed: 1}, appshare.LinkConfig{Seed: 2})
	remote, err := host.AttachPacketConn("late", hostSide, appshare.PacketOptions{})
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			if _, err := partSide.Recv(); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := host.RequestRefresh(remote); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE09NACKRecovery measures NACK construction + pair expansion +
// retransmit log lookups for a 10%-loss pattern over 1000 packets.
func BenchmarkE09NACKRecovery(b *testing.B) {
	var lost []uint16
	for s := uint16(0); s < 1000; s++ {
		if s%10 == 3 {
			lost = append(lost, s)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pairs := rtcp.BuildNACKPairs(lost)
		n := &rtcp.NACK{SenderSSRC: 1, MediaSSRC: 2, Pairs: pairs}
		buf, err := rtcp.Marshal(n)
		if err != nil {
			b.Fatal(err)
		}
		pkts, err := rtcp.Unmarshal(buf)
		if err != nil {
			b.Fatal(err)
		}
		if got := pkts[0].(*rtcp.NACK).Lost(); len(got) != len(lost) {
			b.Fatalf("lost %d != %d", len(got), len(lost))
		}
	}
}

// BenchmarkE10Codecs measures each codec on each content class
// (Section 4.2's table).
func BenchmarkE10Codecs(b *testing.B) {
	synth := textImage(b)
	photo := workload.Photo(640, 480, 11)
	codecs := []appshare.Codec{codec.PNG{}, codec.JPEG{Quality: 75}, codec.Raw{}}
	contents := []struct {
		name string
		img  *image.RGBA
	}{{"synthetic", synth}, {"photo", photo}}
	for _, c := range codecs {
		for _, in := range contents {
			b.Run(fmt.Sprintf("%s/%s", c.Name(), in.name), func(b *testing.B) {
				b.SetBytes(int64(len(in.img.Pix)))
				var encoded int64
				for i := 0; i < b.N; i++ {
					data, err := c.Encode(in.img)
					if err != nil {
						b.Fatal(err)
					}
					encoded += int64(len(data))
				}
				b.ReportMetric(float64(encoded)/float64(b.N), "bytes/frame")
			})
		}
	}
}

func textImage(b *testing.B) *image.RGBA {
	b.Helper()
	desk := appshare.NewDesktop(800, 600)
	win := desk.CreateWindow(1, appshare.XYWH(0, 0, 640, 480))
	ty := workload.NewTyping(win, 4000, 9)
	for i := 0; i < 12; i++ {
		ty.Step()
	}
	return win.Snapshot()
}

// BenchmarkE11Backlog measures a host tick delivering to a backlogged
// stream (deferral path) versus a clear one.
func BenchmarkE11Backlog(b *testing.B) {
	for _, mode := range []struct {
		name string
		rate int
	}{{"clear", 0}, {"backlogged", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			desk := appshare.NewDesktop(1280, 1024)
			win := desk.CreateWindow(1, appshare.XYWH(100, 80, 512, 384))
			host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk, BacklogLimit: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer host.Close()
			hostEnd, partEnd := benchStreamPair()
			go io.Copy(io.Discard, partEnd)
			if _, err := host.AttachStream("s", hostEnd, appshare.StreamOptions{BytesPerSecond: mode.rate}); err != nil {
				b.Fatal(err)
			}
			vid := workload.NewVideoRegion(win, appshare.XYWH(0, 0, 128, 96), 13)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vid.Step()
				if err := host.Tick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12Fanout measures one tick at increasing multicast audience
// sizes: the cost should stay flat (one encode, N sends on the bus).
func BenchmarkE12Fanout(b *testing.B) {
	for _, n := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("subs-%d", n), func(b *testing.B) {
			desk := appshare.NewDesktop(1280, 1024)
			win := desk.CreateWindow(1, appshare.XYWH(100, 80, 512, 384))
			host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk})
			if err != nil {
				b.Fatal(err)
			}
			defer host.Close()
			bus := appshare.NewBus()
			for i := 0; i < n; i++ {
				sub := bus.Subscribe(appshare.LinkConfig{Seed: int64(i + 1)})
				go func() {
					for {
						if _, err := sub.Recv(); err != nil {
							return
						}
					}
				}()
			}
			if _, err := host.AttachMulticast("g", bus); err != nil {
				b.Fatal(err)
			}
			ty := workload.NewTyping(win, 64, 21)
			if err := host.Tick(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ty.Step()
				if err := host.Tick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13Registry measures message type registry classification
// (Tables 1/3/4/5).
func BenchmarkE13Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for t := core.MessageType(0); t < 130; t++ {
			_ = t.IsRemoting()
			_ = t.IsHIP()
		}
	}
}

// BenchmarkE14SDP measures offer generation + parsing (Section 10).
func BenchmarkE14SDP(b *testing.B) {
	cfg := sdp.OfferConfig{
		RemotingPort: 6000, RemotingPT: 99, OfferUDP: true, OfferTCP: true,
		Retransmissions: true, HIPPort: 6006, HIPPT: 100, BFCPPort: 50000, HIPStream: 10,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := sdp.BuildOffer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		parsed, err := sdp.Parse(d.Marshal())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sdp.ParseOffer(parsed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15Floor measures a full request-grant-release floor cycle
// with one queued waiter (Appendix A).
func BenchmarkE15Floor(b *testing.B) {
	floor := bfcp.NewFloor(1, func(uint16, *bfcp.Message) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := floor.Request(1); err != nil {
			b.Fatal(err)
		}
		if err := floor.Request(2); err != nil {
			b.Fatal(err)
		}
		if err := floor.Release(1); err != nil {
			b.Fatal(err)
		}
		if err := floor.Release(2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16RTPHeader measures RTP header marshal+unmarshal
// (Section 5.1.1 usage rules ride on this path).
func BenchmarkE16RTPHeader(b *testing.B) {
	pz := rtp.NewPacketizer(1234, 99, time.Now())
	payload := bytes.Repeat([]byte{1}, 1000)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt := pz.Packetize(payload, i%5 == 0, now)
		raw, err := pkt.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		var back rtp.Packet
		if err := back.Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17Framing measures RFC 4571 framing throughput for
// MTU-sized packets.
func BenchmarkE17Framing(b *testing.B) {
	var buf bytes.Buffer
	w := framing.NewWriter(&buf)
	pkt := bytes.Repeat([]byte{7}, 1200)
	b.SetBytes(int64(len(pkt)))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := w.WriteFrame(pkt); err != nil {
			b.Fatal(err)
		}
		r := framing.NewReader(&buf)
		if _, err := r.ReadFrame(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE18Validate measures the Section 4.1 HIP legitimacy check
// against a 10-window shared set.
func BenchmarkE18Validate(b *testing.B) {
	desk := appshare.NewDesktop(1280, 1024)
	for i := 0; i < 10; i++ {
		desk.CreateWindow(1, appshare.XYWH(i*100, i*60, 300, 200))
	}
	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk})
	if err != nil {
		b.Fatal(err)
	}
	defer host.Close()
	hostSide, partSide := appshare.SimulatedLink(appshare.LinkConfig{Seed: 1}, appshare.LinkConfig{Seed: 2})
	remote, err := host.AttachPacketConn("p", hostSide, appshare.PacketOptions{})
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			if _, err := partSide.Recv(); err != nil {
				return
			}
		}
	}()
	ev := &hip.MouseMoved{WindowID: 10, Left: 950, Top: 600}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := host.InjectEvent(remote, ev); err != nil {
			b.Fatal(err)
		}
	}
}

// discardConn is a transport.PacketConn that accepts everything and
// blocks Recv until Close — the cheapest possible UDP viewer, so the
// fan-out benchmarks measure the host's send path, not a peer. It
// implements transport.BatchSender so the sharded path's batched writes
// take their fast path, as a real sendmmsg-backed socket would.
type discardConn struct {
	done chan struct{}
	once sync.Once
}

func newDiscardConn() *discardConn { return &discardConn{done: make(chan struct{})} }

func (c *discardConn) Send(pkt []byte) error { return nil }

func (c *discardConn) SendBatch(pkts [][]byte) (int, error) { return len(pkts), nil }

func (c *discardConn) Recv() ([]byte, error) {
	<-c.done
	return nil, io.EOF
}

func (c *discardConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// BenchmarkE22ShardedFanout measures one host tick fanning a small
// dirty region out to large attached UDP populations: the viewers-vs-
// tick-latency curve behind the sharded send path. "single-lock" pins
// SendShards=1 (the pre-sharding path: one mutex, per-packet sends,
// inline fan-out); "sharded" uses SendShards=0 (GOMAXPROCS shards, one
// persistent sender goroutine each, batched writes). On a single-proc
// run the two should be within noise of each other — the sharding win
// needs real cores; the batching win shows up in allocs/op either way.
func BenchmarkE22ShardedFanout(b *testing.B) {
	for _, viewers := range []int{128, 1000, 4000, 10000} {
		// sharded follows GOMAXPROCS (the production config; on a
		// single-proc run it clamps to one shard and matches
		// single-lock); sharded-x4 forces four sender goroutines plus
		// the tick barrier so the coordination overhead is visible even
		// without cores to spread across.
		for _, mode := range []struct {
			name   string
			shards int
		}{{"single-lock", 1}, {"sharded", 0}, {"sharded-x4", 4}} {
			b.Run(fmt.Sprintf("viewers-%d/%s", viewers, mode.name), func(b *testing.B) {
				desk := appshare.NewDesktop(640, 480)
				win := desk.CreateWindow(1, appshare.XYWH(0, 0, 512, 384))
				host, err := appshare.NewHost(appshare.HostConfig{
					Desktop:    desk,
					SendShards: mode.shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer host.Close()
				for i := 0; i < viewers; i++ {
					if _, err := host.AttachPacketConn(fmt.Sprintf("v%d", i), newDiscardConn(), appshare.PacketOptions{}); err != nil {
						b.Fatal(err)
					}
				}
				ty := workload.NewTyping(win, 64, 7)
				if err := host.Tick(); err != nil { // drain initial damage
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ty.Step()
					if err := host.Tick(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchStreamPair mirrors the test helper for benchmarks.
func benchStreamPair() (a, b io.ReadWriteCloser) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	a = &benchDuplex{Reader: ar, Writer: aw, c1: ar, c2: aw}
	b = &benchDuplex{Reader: br, Writer: bw, c1: br, c2: bw}
	return a, b
}

type benchDuplex struct {
	io.Reader
	io.Writer
	c1, c2 io.Closer
}

func (d *benchDuplex) Close() error {
	_ = d.c2.Close()
	return d.c1.Close()
}

// BenchmarkE19ParallelEncode measures one capture tick encoding a
// varying number of dirty rects, serial versus the GOMAXPROCS-sized
// worker pool. The payload cache is disabled so every rect is a real
// PNG encode; fill colors change per iteration so no tick is trivially
// empty.
func BenchmarkE19ParallelEncode(b *testing.B) {
	for _, rects := range []int{2, 8, 16} {
		for _, mode := range []struct {
			name    string
			workers int
		}{{"serial", -1}, {"parallel", 0}} {
			b.Run(fmt.Sprintf("rects-%d/%s", rects, mode.name), func(b *testing.B) {
				desk := appshare.NewDesktop(1600, 1200)
				win := desk.CreateWindow(1, appshare.XYWH(0, 0, 1536, 1152))
				pipe, err := capture.New(desk, appshare.CaptureOptions{
					EncodeWorkers: mode.workers,
					CacheBytes:    -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				// Drain the initial full-window damage so iterations
				// measure steady-state dirty-rect encoding only.
				if _, err := pipe.Tick(); err != nil {
					b.Fatal(err)
				}
				var payload uint64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for r := 0; r < rects; r++ {
						c := color.RGBA{R: byte(i), G: byte(r * 37), B: byte(i >> 8), A: 255}
						win.Fill(appshare.XYWH((r%4)*380, (r/4)*280, 160, 120), c)
					}
					batch, err := pipe.Tick()
					if err != nil {
						b.Fatal(err)
					}
					for _, up := range batch.Updates {
						payload += uint64(len(up.Msg.Content))
					}
				}
				b.ReportMetric(float64(payload)/float64(b.N), "payload-bytes/tick")
			})
		}
	}
}

// BenchmarkE20RefreshCache measures serving a full refresh to 8 stream
// participants (a late-joiner storm) with the payload cache on versus
// off. With the cache, static content is encoded once per window and
// the other seven refreshes are pure hits; without it every refresh
// re-encodes everything.
func BenchmarkE20RefreshCache(b *testing.B) {
	const joiners = 8
	for _, mode := range []struct {
		name       string
		cacheBytes int
	}{{"cache", 0}, {"nocache", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			desk := appshare.NewDesktop(1280, 1024)
			win := desk.CreateWindow(1, appshare.XYWH(64, 48, 640, 480))
			win.Fill(appshare.XYWH(0, 0, 640, 480), color.RGBA{R: 40, G: 90, B: 160, A: 255})
			win.DrawText(16, 20, "static slide content", color.RGBA{A: 255})
			host, err := appshare.NewHost(appshare.HostConfig{
				Desktop: desk,
				Capture: appshare.CaptureOptions{CacheBytes: mode.cacheBytes},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer host.Close()
			var remotes []*appshare.Remote
			for i := 0; i < joiners; i++ {
				hostEnd, partEnd := benchStreamPair()
				go io.Copy(io.Discard, partEnd)
				r, err := host.AttachStream(fmt.Sprintf("p%d", i), hostEnd, appshare.StreamOptions{})
				if err != nil {
					b.Fatal(err)
				}
				remotes = append(remotes, r)
			}
			if err := host.Tick(); err != nil {
				b.Fatal(err)
			}
			before := host.EncodeMetrics()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range remotes {
					if err := host.RequestRefresh(r); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			m := host.EncodeMetrics()
			jobs := (m.ParallelJobs + m.SerialJobs) - (before.ParallelJobs + before.SerialJobs)
			encodes := jobs
			if mode.cacheBytes >= 0 {
				encodes = m.Cache.Misses - before.Cache.Misses
				if lookups := (m.Cache.Hits + m.Cache.Misses) - (before.Cache.Hits + before.Cache.Misses); lookups > 0 {
					hits := m.Cache.Hits - before.Cache.Hits
					b.ReportMetric(float64(hits)/float64(lookups), "hit-rate")
				}
			}
			// Encodes per 8-participant refresh storm: ~1 per window with
			// the cache, ~8 per window without.
			b.ReportMetric(float64(encodes)/float64(b.N), "encodes/fanout")
		})
	}
}

// BenchmarkE21LadderTiers measures one host tick delivering a video
// region to a viewer pinned on each quality-ladder rung: the per-tier
// cost a congested viewer pays (ns/op) and the wire bytes each tier
// actually ships. Decimation should cut bytes by ~1/DecimateEvery,
// the scaled tier by whatever the pixelation saves, and keyframe-only
// to window-structure noise.
func BenchmarkE21LadderTiers(b *testing.B) {
	tiers := []struct {
		name string
		tier appshare.QualityTier
	}{
		{"full", appshare.TierFull},
		{"decimated", appshare.TierDecimated},
		{"scaled", appshare.TierScaled},
		{"keyframe", appshare.TierKeyframeOnly},
	}
	for _, tc := range tiers {
		b.Run(tc.name, func(b *testing.B) {
			desk := appshare.NewDesktop(1280, 1024)
			win := desk.CreateWindow(1, appshare.XYWH(100, 80, 512, 384))
			// A generous backlog limit keeps Section 7 backpressure out of
			// the measurement: the tier policy alone decides what ships.
			host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk, BacklogLimit: 8 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer host.Close()
			hostEnd, partEnd := benchStreamPair()
			go io.Copy(io.Discard, partEnd)
			r, err := host.AttachStream("v", hostEnd, appshare.StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			vid := workload.NewVideoRegion(win, appshare.XYWH(0, 0, 192, 144), 17)
			if err := host.Tick(); err != nil { // drain attach-time state
				b.Fatal(err)
			}
			r.PinQualityTier(tc.tier)
			before := r.Health().SentOctets
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vid.Step()
				if err := host.Tick(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sent := r.Health().SentOctets - before
			b.ReportMetric(float64(sent)/float64(b.N), "wire-bytes/tick")
		})
	}
}
