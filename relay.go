package appshare

import (
	"io"
	"net"

	"appshare/internal/relay"
)

// Relay cascade facade (see DESIGN.md "Relay cascade"): an edge node
// that subscribes to a Host's — or another relay's — prepared-batch
// stream and re-fans it to its own viewers, absorbing late joiners and
// PLIs with a cached refresh snapshot. ads-relay is the reference
// deployment.

// Relay is an edge fan-out node of the relay cascade.
type Relay = relay.Relay

// RelayConfig configures a Relay.
type RelayConfig = relay.Config

// RelayStats is a snapshot of a relay's cascade counters.
type RelayStats = relay.Stats

// RelayViewer is one participant attached to a Relay.
type RelayViewer = relay.Viewer

// RelayUpstream is the subscription surface a Relay attaches to; both
// *Host and *Relay satisfy it.
type RelayUpstream = relay.Upstream

// NewRelay returns a Relay ready to attach to an upstream.
func NewRelay(cfg RelayConfig) *Relay { return relay.New(cfg) }

// SubscribeRelayStream attaches rl to an origin (or parent relay) over
// a framed reliable stream — typically a TCP connection to the
// upstream's remoting port. It performs the RelaySubscribe handshake
// and pumps forwarded payloads in the background; the returned channel
// yields the terminal pump error.
func SubscribeRelayStream(rl *Relay, rw io.ReadWriteCloser, wantRefresh bool) (<-chan error, error) {
	return rl.SubscribeStream(rw, wantRefresh)
}

// RelayServeUDP serves UDP viewers of rl from one socket, with the same
// per-source demultiplexing as ServeUDP: the first datagram from a new
// source (typically its PLI) attaches it as a viewer, served its first
// paint from the relay's refresh cache. Blocks until the socket fails.
func RelayServeUDP(rl *Relay, conn *net.UDPConn) error {
	srv := &udpServer{
		conn:    conn,
		remotes: make(map[string]*udpRemote),
		attach: func(id string, pc PacketConn) error {
			_, err := rl.AttachPacketConn(id, pc)
			return err
		},
	}
	return srv.run()
}
