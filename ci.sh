#!/bin/sh
# CI gate: vet, build, then the full test suite under the race detector.
# The -race run includes the concurrency tests that drive Host.Tick
# against participant attach/detach and BroadcastExtension, and the
# determinism tests that run under -cpu 1,4.
set -eux

cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race ./...
# Flake gate: the liveness/eviction tests mix a virtual clock with real
# goroutine scheduling, so run them repeatedly under -race to shake out
# timing sensitivity before it lands.
go test -race -count=5 -run Liveness . ./internal/ah ./internal/transport
# Same treatment for the quality-ladder tests: the controller mixes the
# virtual sweep clock with real sink goroutines, and its hysteresis
# assertions are exactly the kind that only flake under load.
go test -race -count=5 -run Ladder . ./internal/ah
# Scenario-matrix smoke: every netsim profile with all oracles, the
# replay-determinism check and the planted-fault mutation checks, under
# the race detector (short profiles, fixed seeds — see EXPERIMENTS.md
# Section C).
go test -race -count=1 -run 'ScenarioMatrix|ScenarioDeterminism|ScenarioMutation' .
# Sharded send path gates (see DESIGN.md "Sharded send path"). Storm
# scenarios at flash-crowd scale with every oracle armed, plus the
# shard-count replay-invariance proof, under the race detector.
go test -race -count=1 -run 'TestScenarioStorms|TestStormShardInvariance' .
# Shard churn: concurrent flash-crowd attach/detach/evict against the
# tick loop with counter reconciliation, and the per-remote byte-stream
# parity proof, on one and four procs.
go test -race -cpu 1,4 -count=2 -run 'TestShardChurnFlashCrowd|TestShardByteStreamParity' ./internal/ah
# Tile-store flake gate: the eviction-coherence and revisit tests pump
# packets through real goroutines while asserting exact desync/reference
# counts — rerun them under -race across every package holding a piece
# of the tile pipeline (dictionary, wire message, negotiation, host
# substitution, viewer apply).
go test -race -count=5 -run Tile ./internal/ah ./internal/codec ./internal/participant ./internal/remoting ./internal/sdp
# Relay cascade flake gate: the relay's fan-out runs on the origin's
# Tick goroutine while viewer feedback arrives on pump goroutines, and
# the cache/latch handoff between them is exactly the kind of ordering
# that only breaks under scheduler pressure — rerun the relay tests
# repeatedly under -race.
go test -race -count=5 -run Relay ./internal/relay
# 2-level-tree smoke: origin → relay → edge viewers with every oracle
# armed (including relay-cascade: zero edge-triggered origin encodes),
# plus its replay-determinism proof, under the race detector.
go test -race -count=1 -run 'TestScenarioMatrix/relay-tree|TestScenarioDeterminism/relay-tree' .
# Broker/migration flake gate: the broker's sweep clock is virtual but
# the host checkpoint it snapshots is produced on the tick goroutine,
# and the standby's resumed sinks run real sender goroutines — rerun
# the whole broker + migration surface repeatedly under -race.
go test -race -count=5 -run 'Broker|Migrate|Migration|Snapshot|Sweep|Placement|FloorState' . ./internal/broker ./internal/bfcp
# Snapshot round-trip determinism at 1 and 4 send shards on one and
# four procs: restore-then-tick must be byte-identical to the original
# host's output, shard count and scheduling notwithstanding.
go test -race -cpu 1,4 -count=1 -run 'TestSnapshotRoundTripDeterminism' .
# Partition-then-migrate smoke: every migration scenario with all
# oracles armed (failover tick pinned, floor custody, zero standby
# refresh encodes), the replay-determinism proof, both planted handoff
# mutations and the broker wire-invisibility check, under the race
# detector (seeds 140-149 — see EXPERIMENTS.md Section C).
go test -race -count=1 -run 'TestMigrationFamily|TestMigrationDeterminism|TestMigrationMutation|TestBrokerSurvivorJournalIdentity' .
# Replay the tree and failover scenarios through the ads-bench scenario
# driver — the same seeds and oracles a developer reaches for when a
# matrix failure needs reproducing outside the test harness.
go run ./cmd/ads-bench -scenarios -scenario relay-tree
go run ./cmd/ads-bench -scenarios -scenario migrate-shards
# Bench drift: re-measure the sharded fan-out tick latency and fail on
# a >20% regression against the committed curve (absolute comparison
# only when the environment matches the committed file; the fresh
# sharded-vs-single-lock overhead check always applies).
go run ./cmd/ads-bench -drift BENCH_sharded_fanout.json
# Tile-store drift: re-measure the revisit-workload wire bytes and fail
# when the store-on reduction drops below the 10x acceptance floor, or
# when byte counts drift >10% against the committed file on a matching
# Go version.
go run ./cmd/ads-bench -tiles-drift BENCH_tilestore.json
