#!/bin/sh
# CI gate: vet, build, then the full test suite under the race detector.
# The -race run includes the concurrency tests that drive Host.Tick
# against participant attach/detach and BroadcastExtension, and the
# determinism tests that run under -cpu 1,4.
set -eux

cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race ./...
# Flake gate: the liveness/eviction tests mix a virtual clock with real
# goroutine scheduling, so run them repeatedly under -race to shake out
# timing sensitivity before it lands.
go test -race -count=5 -run Liveness . ./internal/ah ./internal/transport
# Same treatment for the quality-ladder tests: the controller mixes the
# virtual sweep clock with real sink goroutines, and its hysteresis
# assertions are exactly the kind that only flake under load.
go test -race -count=5 -run Ladder . ./internal/ah
# Scenario-matrix smoke: every netsim profile with all oracles, the
# replay-determinism check and the planted-fault mutation checks, under
# the race detector (short profiles, fixed seeds — see EXPERIMENTS.md
# Section C).
go test -race -count=1 -run 'ScenarioMatrix|ScenarioDeterminism|ScenarioMutation' .
