module appshare

go 1.22
