package appshare_test

import (
	"image/color"
	"testing"
	"time"

	"appshare"
)

// TestRepairLoopRecoversLossyStream runs the background repair loop
// against a 15%-loss link and verifies the stream heals without manual
// NACK calls (and with the Section 5.3.2 random hold-down enabled).
func TestRepairLoopRecoversLossyStream(t *testing.T) {
	desk := appshare.NewDesktop(800, 600)
	win := desk.CreateWindow(1, appshare.XYWH(50, 50, 400, 300))
	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk, Retransmissions: true})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	hostSide, partSide := appshare.SimulatedLink(
		appshare.LinkConfig{LossRate: 0.15, Seed: 31},
		appshare.LinkConfig{Seed: 32},
	)
	if _, err := host.AttachPacketConn("lossy", hostSide, appshare.PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	p := appshare.NewParticipant(appshare.ParticipantConfig{})
	conn := appshare.ConnectPacket(p, partSide)
	defer conn.Close()

	stop := make(chan struct{})
	defer close(stop)
	go func() { _ = conn.RepairLoop(stop, 20*time.Millisecond, 10*time.Millisecond) }()

	if err := conn.SendPLI(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "join", func() bool {
		if err := host.Tick(); err != nil {
			t.Fatal(err)
		}
		return len(p.Windows()) == 1
	})

	// Sustained traffic with loss.
	for i := 0; i < 40; i++ {
		win.Fill(appshare.XYWH(i*8, i*6, 40, 40), colorOf(i))
		if err := host.Tick(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The repair loop must eventually drain all gaps.
	waitFor(t, "stream repair", func() bool { return len(p.MissingSequences()) == 0 })
	received, _, _, dropped := p.Stats()
	if received == 0 {
		t.Fatal("no packets received")
	}
	if dropped > 0 {
		// Dropped messages mean fragments were abandoned — the repair
		// loop should have prevented that (or PLI'd). Tolerate only if
		// a refresh healed state afterward.
		if p.NeedsRefresh() {
			t.Fatalf("%d messages dropped and stream still needs refresh", dropped)
		}
	}
}

func colorOf(i int) color.RGBA {
	return color.RGBA{R: uint8(i * 20), G: uint8(255 - i*5), B: 0x80, A: 0xFF}
}
